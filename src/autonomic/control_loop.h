// End-to-end adaptive control loop (Section 5 brought together): watch the
// observed query-class mix of the running cluster, detect workload drift,
// SLO violations, load swings, and crashes, choose a corrective action —
// re-allocate, re-segment, scale out/in, or self-heal — plan the migration
// with the Hungarian matcher + ETL cost model, and execute it *live*
// through a staged MigrationExecutor (cluster/migration_executor.h): old
// placements keep serving under ETL interference until every new replica
// is caught up, then routing swaps atomically.
//
// Decision priority per control interval (one trace bucket):
//
//            ┌── k-safety violated? ──────────── SELF-HEAL (pre-empts an
//            │                                   in-flight migration)
//   observe ─┤── p99 > SLO and hot? ──────────── SCALE-OUT
//            │── idle and p99 far under SLO? ─── SCALE-IN
//            │── mix drifted off every serving   RE-ALLOCATE, escalating
//            │   mix?                            to RE-SEGMENT after
//            │                                   repeated drift reallocs
//            └── otherwise ────────────────────── steady state
//
// Drift is the L1 distance between the windowed observed mix
// (SimStats::class_completions in weight space) and the *nearest* mix the
// installed layout was built for — a re-segmented layout serves several
// mixes at once, so oscillating between them no longer reads as drift.
//
// The whole loop is deterministic: per-bucket seeds are derived
// arithmetically from the configured seed and the bucket's time of day,
// nothing reads a clock, and a day replay is bit-identical across repeats
// and at any sweep thread count (pinned by bench_adaptive and
// control_loop_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "common/annotations.h"
#include "cluster/migration_executor.h"
#include "cluster/simulator.h"
#include "physical/physical_allocator.h"

namespace qcap {

/// Corrective action decided at the end of a control interval.
enum class AdaptiveAction {
  kNone = 0,
  kReallocate,  ///< Same cluster size, layout re-fit to the observed mix.
  kResegment,   ///< Merged multi-segment layout robust to mix oscillation.
  kScaleOut,    ///< Add a node (SLO violated while the cluster runs hot).
  kScaleIn,     ///< Drop a node (idle and comfortably inside the SLO).
  kSelfHeal,    ///< Re-plan onto survivors + replacement after a crash.
};

const char* ToString(AdaptiveAction action);

/// Control-loop tuning.
struct AdaptiveOptions {
  /// The p99 response-time objective, milliseconds.
  double slo_p99_ms = 60.0;
  /// Scale out only when the SLO is violated *and* mean busy fraction
  /// exceeds this (a violation on an idle cluster is not a capacity
  /// problem and falls through to the drift path).
  double scale_up_utilization = 0.5;
  /// Scale in when busy fraction drops below this...
  double scale_down_utilization = 0.2;
  /// ...and p99 stays under slo_p99_ms * this headroom factor.
  double scale_down_headroom = 0.5;
  size_t min_nodes = 2;
  size_t max_nodes = 10;
  /// Sliding window (in buckets) the drift detector averages over.
  size_t window_buckets = 3;
  /// L1 distance to the nearest serving mix that triggers re-allocation.
  double drift_threshold = 0.35;
  /// Drift re-allocations since the last re-segmentation that escalate the
  /// next drift into a re-segmentation. 0 re-segments immediately.
  size_t resegment_after = 2;
  /// L1 boundary between adjacent observed mixes that starts a new segment
  /// when re-segmenting the mix history.
  double segment_split_threshold = 0.3;
  /// Control intervals to hold off new (non-self-heal) decisions after a
  /// routing swap — lets the window refill with post-swap observations.
  size_t cooldown_buckets = 1;
  /// Redundancy target for CheckKSafety (Algorithm 3). 0 = "every class
  /// still servable, no data lost".
  int k_safety = 0;
  /// Real seconds per control interval (trace bucket).
  double bucket_seconds = 600.0;
  /// Simulated seconds per interval: a representative slice keeps the
  /// replay cheap, as in autonomic/scaler.h.
  double slice_seconds = 12.0;
  MigrationOptions migration;
  /// ETL rates the Hungarian transition planner prices migrations with.
  EtlCostModel etl;
  SimulationConfig sim;
};

/// One control interval's offered workload.
struct BucketDemand {
  /// Bucket start, seconds since day start. Buckets must be uniform and
  /// bucket_seconds apart.
  double tod_seconds = 0.0;
  /// Offered arrival rate, logical requests/second.
  double offered_qps = 0.0;
  /// Per-class multiplier on the base classification's weights (reads
  /// first, then updates; empty = all 1): the diurnal mix shift. Scaled
  /// weights are renormalized before simulation.
  std::vector<double> class_weight_scale;
};

/// Telemetry of one control interval.
struct AdaptiveStep {
  double tod_seconds = 0.0;
  size_t nodes = 0;           ///< Cluster size at the end of the interval.
  double offered_qps = 0.0;
  double p99_ms = 0.0;
  double avg_ms = 0.0;
  double availability = 1.0;
  double utilization = 0.0;   ///< Mean busy fraction across servers.
  double drift = 0.0;         ///< L1 distance to the nearest serving mix.
  AdaptiveAction decision = AdaptiveAction::kNone;
  MigrationPhase phase = MigrationPhase::kIdle;  ///< Phase while running.
  bool swapped = false;       ///< Routing swap happened in this interval.
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;
  size_t dead_backends = 0;   ///< Down at the end of the interval.
};

/// One decided transition, from decision to (past) the routing swap.
struct TransitionRecord {
  AdaptiveAction action = AdaptiveAction::kNone;
  std::string cause;              ///< Human-readable trigger.
  double decided_seconds = 0.0;   ///< Bucket end that decided it.
  double swap_seconds = 0.0;      ///< Absolute routing cut-over time.
  double moved_bytes = 0.0;
  double etl_seconds = 0.0;
  size_t nodes_before = 0;
  size_t nodes_after = 0;
  double p99_before_ms = 0.0;     ///< The deciding bucket's p99.
  double p99_during_ms = 0.0;     ///< Max p99 while the migration ran.
  double p99_after_ms = 0.0;      ///< First full post-swap bucket's p99.
  double availability_during = 1.0;  ///< Min availability while migrating.
  bool aborted = false;           ///< Superseded (e.g. by a self-heal).
  bool completed = false;         ///< Swap executed.
};

/// Whole-day outcome.
struct AdaptiveReport {
  std::vector<AdaptiveStep> steps;
  std::vector<TransitionRecord> transitions;
  /// Fraction of intervals whose p99 met the SLO.
  double slo_attainment = 0.0;
  /// Completed / offered over the whole day.
  double availability = 1.0;
  double worst_p99_ms = 0.0;
  size_t reallocations = 0;
  size_t resegmentations = 0;
  size_t scale_outs = 0;
  size_t scale_ins = 0;
  size_t self_heals = 0;
  /// Integral of cluster size over time.
  double node_seconds = 0.0;
};

/// \brief The continuous controller: observe → decide → plan → execute.
class AdaptiveController {
 public:
  /// \p base is the classification of the workload (structure + mean
  /// costs; its weights are the reference mix). \p allocator recomputes
  /// layouts at every corrective action (not owned, must outlive).
  AdaptiveController(const Classification& base, Allocator* allocator,
                     AdaptiveOptions options);

  /// Computes and installs the initial allocation on \p nodes backends.
  Status Install(size_t nodes);

  /// Runs one control interval: simulates the offered load on the current
  /// layout (applying faults, ETL interference, and — if the in-flight
  /// migration's catch-up completes mid-interval — the atomic routing
  /// swap), updates the observation window, and decides the next action.
  /// \p faults are this interval's external events in absolute day time.
  Result<AdaptiveStep> Step(const BucketDemand& demand,
                            const std::vector<FaultEvent>& faults);

  /// Replays a full day: one Step per demand bucket, slicing \p day_faults
  /// into the buckets by time. Install() must have run.
  Result<AdaptiveReport> ReplayDay(const std::vector<BucketDemand>& day,
                                   const FaultPlan& day_faults);

  const Allocation& allocation() const { return alloc_; }
  const Classification& base() const { return base_; }
  size_t nodes() const { return nodes_; }
  const std::vector<bool>& alive() const { return alive_; }
  const MigrationExecutor& migration() const { return migration_; }
  const std::vector<TransitionRecord>& transitions() const {
    return transitions_;
  }
  /// The mixes the installed layout was built to serve (≥ 1; several after
  /// a re-segmentation).
  const std::vector<std::vector<double>>& serving_mixes() const {
    return serving_mixes_;
  }

 private:
  /// Copy of the base classification with per-class weights replaced by
  /// \p mix (renormalized).
  Classification WithMix(const std::vector<double>& mix) const;
  /// Observed completions → weight-space mix (count × mean cost, normed).
  std::vector<double> ObservedMix(const std::vector<uint64_t>& counts) const;
  /// Mean of the observation window.
  std::vector<double> WindowMix() const;
  /// min over serving_mixes_ of the L1 distance to \p mix.
  double DriftOf(const std::vector<double>& mix) const;

  /// Simulates [w0, w1) ⊂ the bucket as a proportional sub-slice on the
  /// current layout, assembling the slice-local fault plan from persistent
  /// state (dead nodes, sticky degrades), \p external events, and ETL
  /// interference. Updates persistent liveness/degrade state as a side
  /// effect. Adds results into \p *step and \p *counts.
  Status RunSlice(const BucketDemand& demand, double w0, double w1,
                  const std::vector<FaultEvent>& external, uint64_t seed,
                  AdaptiveStep* step, std::vector<uint64_t>* counts,
                  double* busy_seconds, double* capacity_seconds,
                  double* response_sum);

  /// Executes the atomic swap: installs the executor's target, resizes
  /// liveness/degrade state, re-provisions dead nodes (the migration
  /// materialized every replica), finalizes the transition record.
  void SwapNow();

  /// Decides and (if warranted) plans + begins a migration at
  /// \p decided_seconds. Fills step->decision.
  Status Decide(double decided_seconds, AdaptiveStep* step);
  /// Plans a migration toward \p target_mix on \p target_nodes and begins
  /// it; shared by every action.
  Status BeginTransition(AdaptiveAction action, std::string cause,
                         const std::vector<double>& target_mix,
                         size_t target_nodes, double decided_seconds,
                         double p99_before_ms);
  /// Re-segments the observed-mix history and begins the merged-layout
  /// transition.
  Status BeginResegmentation(double decided_seconds, double p99_before_ms);

  // The controller is single-threaded by contract: every entry point runs
  // on the operator's control thread (docs/ADAPTIVE.md), and cross-thread
  // work happens through the Dispatcher's own routing lock, never by
  // sharing this state. Confined, not guarded.
  QCAP_THREAD_CONFINED("operator control thread")
  Classification base_;
  Allocator* allocator_;
  AdaptiveOptions options_;
  PhysicalAllocator physical_;
  MigrationExecutor migration_;

  QCAP_THREAD_CONFINED("operator control thread")
  Allocation alloc_;
  size_t nodes_ = 0;
  std::vector<bool> alive_;
  std::vector<double> degrade_;  ///< Sticky per-node straggler factors.
  /// Liveness when the in-flight self-heal was planned; a further change
  /// (another crash) makes that plan stale and forces a re-plan.
  std::vector<bool> heal_alive_snapshot_;
  std::vector<std::vector<double>> serving_mixes_;
  /// Mixes the in-flight migration's target was built for; becomes
  /// serving_mixes_ at the swap.
  std::vector<std::vector<double>> staged_mixes_;
  bool staged_resets_drift_ = false;
  std::vector<std::vector<double>> window_;   ///< Last window_buckets mixes.
  std::vector<std::vector<double>> history_;  ///< All observed mixes.
  std::vector<TransitionRecord> transitions_;
  size_t drift_reallocs_ = 0;  ///< Since the last re-segmentation.
  size_t cooldown_ = 0;
  /// Transition whose p99_after_ms the next interval fills; npos = none.
  size_t pending_after_ = static_cast<size_t>(-1);
  size_t bucket_index_ = 0;
};

}  // namespace qcap
