// Autonomic scaling (Section 5): a response-time-driven control loop that
// grows and shrinks the simulated cluster while a diurnal workload plays,
// reallocating via cost-minimal matching at every resize.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocator.h"
#include "cluster/simulator.h"
#include "physical/physical_allocator.h"
#include "workloads/trace.h"

namespace qcap {

/// Control-loop parameters.
struct AutonomicConfig {
  /// Scale out when the bucket's average response exceeds this.
  double scale_up_response_ms = 35.0;
  /// Scale in when the bucket's average response drops below this...
  double scale_down_response_ms = 1e9;
  /// ...or when the cluster's busy fraction drops below this (response
  /// times barely move at low load, so utilization is the more robust
  /// scale-in signal).
  double scale_down_utilization = 0.35;
  size_t min_nodes = 1;
  size_t max_nodes = 6;
  /// Requests-per-10-minute buckets of the trace are multiplied by this to
  /// get the offered load (the paper scaled its trace by 40x).
  double trace_multiplier = 40.0;
  /// Simulated seconds per trace bucket (a representative slice of the
  /// 10-minute bucket keeps the simulation cheap).
  double slice_seconds = 20.0;
  SimulationConfig sim;
};

/// One control-loop step (one trace bucket).
struct AutonomicStep {
  double tod_seconds = 0.0;
  size_t nodes = 0;
  double arrival_rate_qps = 0.0;
  double avg_response_ms = 0.0;
  double moved_bytes = 0.0;  ///< ETL volume if the cluster was resized here.
};

/// Full-day outcome.
struct AutonomicResult {
  std::vector<AutonomicStep> steps;
  double overall_avg_response_ms = 0.0;
  double overall_max_response_ms = 0.0;
  double node_seconds = 0.0;  ///< Integral of active nodes over time.
};

/// \brief Replays a diurnal trace against an autonomically scaled cluster.
class AutonomicScaler {
 public:
  /// \p cls is the (global) classification of the trace workload;
  /// \p allocator recomputes allocations at each resize.
  AutonomicScaler(const Classification& cls, Allocator* allocator,
                  AutonomicConfig config)
      : cls_(cls), allocator_(allocator), config_(config) {}

  /// Replays \p day. If \p fixed_nodes > 0, the control loop is disabled
  /// and the cluster stays at that size (the paper's "w/o scaling"
  /// baseline).
  Result<AutonomicResult> Replay(const std::vector<workloads::TracePoint>& day,
                                 size_t fixed_nodes = 0);

 private:
  const Classification& cls_;
  Allocator* allocator_;
  AutonomicConfig config_;
  PhysicalAllocator physical_;
};

}  // namespace qcap
