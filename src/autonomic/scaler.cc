#include "autonomic/scaler.h"

#include <algorithm>
#include <map>

namespace qcap {

Result<AutonomicResult> AutonomicScaler::Replay(
    const std::vector<workloads::TracePoint>& day, size_t fixed_nodes) {
  if (allocator_ == nullptr) {
    return Status::InvalidArgument("allocator must not be null");
  }
  if (day.empty()) {
    return Status::InvalidArgument("empty trace");
  }

  // Allocations and simulators per cluster size are cached: the control
  // loop revisits sizes many times over a day, and a reused simulator runs
  // out of warm scratch (bit-identical to a fresh one for the same seed).
  // std::map nodes are address-stable, so the cached simulator's reference
  // to its allocation stays valid as more sizes are added.
  std::map<size_t, Allocation> alloc_cache;
  std::map<size_t, ClusterSimulator> sim_cache;
  auto allocation_for = [&](size_t nodes) -> Result<const Allocation*> {
    auto it = alloc_cache.find(nodes);
    if (it == alloc_cache.end()) {
      QCAP_ASSIGN_OR_RETURN(
          Allocation a, allocator_->Allocate(cls_, HomogeneousBackends(nodes)));
      it = alloc_cache.emplace(nodes, std::move(a)).first;
    }
    return &it->second;
  };
  auto simulator_for = [&](size_t nodes) -> Result<ClusterSimulator*> {
    auto it = sim_cache.find(nodes);
    if (it == sim_cache.end()) {
      QCAP_ASSIGN_OR_RETURN(const Allocation* alloc, allocation_for(nodes));
      QCAP_ASSIGN_OR_RETURN(
          ClusterSimulator sim,
          ClusterSimulator::Create(cls_, *alloc, HomogeneousBackends(nodes),
                                   config_.sim));
      it = sim_cache.emplace(nodes, std::move(sim)).first;
    }
    return &it->second;
  };

  size_t nodes = fixed_nodes > 0 ? fixed_nodes
                                 : std::max<size_t>(config_.min_nodes, 1);
  AutonomicResult result;
  double response_sum = 0.0;
  uint64_t response_count = 0;

  for (const auto& bucket : day) {
    const double rate_qps =
        bucket.requests_per_10min * config_.trace_multiplier / 600.0;

    QCAP_ASSIGN_OR_RETURN(ClusterSimulator* simulator, simulator_for(nodes));
    simulator->set_seed(config_.sim.seed ^
                        static_cast<uint64_t>(bucket.tod_seconds));
    QCAP_ASSIGN_OR_RETURN(
        SimStats stats,
        simulator->RunOpen(config_.slice_seconds, std::max(rate_qps, 0.5)));

    AutonomicStep step;
    step.tod_seconds = bucket.tod_seconds;
    step.nodes = nodes;
    step.arrival_rate_qps = rate_qps;
    step.avg_response_ms = stats.avg_response_seconds * 1000.0;

    response_sum += stats.avg_response_seconds * 1000.0 *
                    static_cast<double>(stats.completed_total());
    response_count += stats.completed_total();
    result.overall_max_response_ms = std::max(
        result.overall_max_response_ms, stats.max_response_seconds * 1000.0);
    result.node_seconds += static_cast<double>(nodes) * 600.0;

    // Control decision for the next bucket.
    if (fixed_nodes == 0) {
      double busy = 0.0;
      for (double b : stats.backend_busy_seconds) busy += b;
      const double utilization =
          busy / (static_cast<double>(nodes) *
                  static_cast<double>(config_.sim.servers_per_backend) *
                  std::max(stats.duration_seconds, 1e-9));
      size_t next = nodes;
      if (step.avg_response_ms > config_.scale_up_response_ms &&
          nodes < config_.max_nodes) {
        next = nodes + 1;
      } else if ((step.avg_response_ms < config_.scale_down_response_ms ||
                  utilization < config_.scale_down_utilization) &&
                 nodes > config_.min_nodes) {
        next = nodes - 1;
      }
      if (next != nodes) {
        QCAP_ASSIGN_OR_RETURN(const Allocation* current, allocation_for(nodes));
        QCAP_ASSIGN_OR_RETURN(const Allocation* target, allocation_for(next));
        QCAP_ASSIGN_OR_RETURN(
            TransitionPlan plan,
            physical_.Plan(*current, *target, cls_.catalog));
        step.moved_bytes = plan.total_bytes;
        nodes = next;
      }
    }
    result.steps.push_back(step);
  }

  result.overall_avg_response_ms =
      response_count > 0 ? response_sum / static_cast<double>(response_count)
                         : 0.0;
  return result;
}

}  // namespace qcap
