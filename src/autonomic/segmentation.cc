#include "autonomic/segmentation.h"

#include <algorithm>
#include <cmath>

#include "physical/scaling.h"

namespace qcap {

Result<std::vector<std::vector<double>>> WindowMixes(
    const QueryJournal& journal, double window_seconds) {
  double begin = 0.0, end = 0.0;
  if (!journal.TimeRange(&begin, &end)) {
    return Status::InvalidArgument("journal has no timestamped records");
  }
  std::vector<std::vector<double>> mixes;
  for (double t = begin; t < end; t += window_seconds) {
    const QueryJournal slice = journal.Slice(t, t + window_seconds);
    std::vector<double> mix(journal.NumDistinct(), 0.0);
    if (!slice.empty()) {
      // Map slice queries back to the full journal's query indices by text.
      double total = 0.0;
      for (size_t i = 0; i < slice.queries().size(); ++i) {
        total += static_cast<double>(slice.count(i));
      }
      for (size_t i = 0; i < slice.queries().size(); ++i) {
        for (size_t j = 0; j < journal.queries().size(); ++j) {
          if (journal.queries()[j].text == slice.queries()[i].text) {
            mix[j] = static_cast<double>(slice.count(i)) / total;
            break;
          }
        }
      }
    }
    mixes.push_back(std::move(mix));
  }
  return mixes;
}

Result<std::vector<Segment>> SegmentJournal(const QueryJournal& journal,
                                            const SegmentationOptions& options) {
  double begin = 0.0, end = 0.0;
  if (!journal.TimeRange(&begin, &end)) {
    return Status::InvalidArgument("journal has no timestamped records");
  }
  QCAP_ASSIGN_OR_RETURN(std::vector<std::vector<double>> mixes,
                        WindowMixes(journal, options.window_seconds));
  std::vector<Segment> segments;
  Segment current{begin, begin + options.window_seconds};
  for (size_t w = 1; w < mixes.size(); ++w) {
    double distance = 0.0;
    for (size_t q = 0; q < mixes[w].size(); ++q) {
      distance += std::abs(mixes[w][q] - mixes[w - 1][q]);
    }
    const double window_begin = begin + static_cast<double>(w) *
                                            options.window_seconds;
    if (distance > options.mix_threshold) {
      current.end_seconds = window_begin;
      segments.push_back(current);
      current = Segment{window_begin, window_begin + options.window_seconds};
    } else {
      current.end_seconds = window_begin + options.window_seconds;
    }
  }
  current.end_seconds = std::max(current.end_seconds, end + 1.0);
  segments.push_back(current);
  return segments;
}

Result<Allocation> PlacementForClassification(const Allocation& placement,
                                              const Classification& cls) {
  Allocation out(placement.num_backends(), cls.catalog.size(),
                 cls.reads.size(), cls.updates.size());
  if (placement.num_fragments() != cls.catalog.size()) {
    return Status::InvalidArgument(
        "placement fragment count does not match classification");
  }
  for (size_t b = 0; b < placement.num_backends(); ++b) {
    out.PlaceSet(b, placement.BackendFragments(b));
  }
  alloc_internal::CloseUpdatesEverywhere(cls, &out);
  alloc_internal::PlaceOrphanFragments(cls, &out);
  // Spread each read class evenly across its capable backends.
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    std::vector<size_t> capable;
    for (size_t b = 0; b < out.num_backends(); ++b) {
      if (out.HoldsAll(b, cls.reads[r].fragments)) capable.push_back(b);
    }
    if (capable.empty()) {
      return Status::InvalidArgument("read class " + cls.reads[r].label +
                                     " not servable by merged placement");
    }
    const double share =
        cls.reads[r].weight / static_cast<double>(capable.size());
    for (size_t b : capable) out.set_read_assign(b, r, share);
  }
  return out;
}

Result<Allocation> SegmentedAllocation(
    const QueryJournal& journal, const std::vector<Segment>& segments,
    const engine::Catalog& catalog, const ClassifierOptions& options,
    Allocator* allocator, const std::vector<BackendSpec>& backends) {
  if (allocator == nullptr) {
    return Status::InvalidArgument("allocator must not be null");
  }
  if (segments.empty()) {
    return Status::InvalidArgument("no segments");
  }
  Classifier classifier(catalog, options);
  std::vector<Allocation> per_segment;
  const FragmentCatalog* fragment_catalog = nullptr;
  std::vector<Classification> classifications;
  for (const Segment& seg : segments) {
    const QueryJournal slice =
        journal.Slice(seg.begin_seconds, seg.end_seconds);
    if (slice.empty()) continue;
    QCAP_ASSIGN_OR_RETURN(Classification cls, classifier.Classify(slice));
    QCAP_ASSIGN_OR_RETURN(Allocation alloc,
                          allocator->Allocate(cls, backends));
    classifications.push_back(std::move(cls));
    per_segment.push_back(std::move(alloc));
    fragment_catalog = &classifications.back().catalog;
  }
  if (per_segment.empty()) {
    return Status::InvalidArgument("all segments were empty");
  }
  return MergeAllocations(per_segment, *fragment_catalog);
}

}  // namespace qcap
