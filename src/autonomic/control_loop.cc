#include "autonomic/control_loop.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "autonomic/segmentation.h"
#include "model/validation.h"
#include "physical/scaling.h"

namespace qcap {
namespace {

/// Weight floor applied when a mix is turned into a classification: every
/// class stays allocatable and servable even if a bucket observed none of
/// its queries.
constexpr double kMixFloor = 1e-4;

/// Seed perturbation for the post-swap part of a split bucket.
constexpr uint64_t kSwapSeedSalt = 0x9e3779b97f4a7c15ULL;

double L1(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

std::vector<double> MeanMix(const std::vector<std::vector<double>>& mixes,
                            size_t begin, size_t end) {
  std::vector<double> mean(mixes[begin].size(), 0.0);
  for (size_t i = begin; i < end; ++i) {
    for (size_t c = 0; c < mean.size(); ++c) mean[c] += mixes[i][c];
  }
  const double inv = 1.0 / static_cast<double>(end - begin);
  for (double& v : mean) v *= inv;
  return mean;
}

}  // namespace

const char* ToString(AdaptiveAction action) {
  switch (action) {
    case AdaptiveAction::kNone:
      return "none";
    case AdaptiveAction::kReallocate:
      return "reallocate";
    case AdaptiveAction::kResegment:
      return "resegment";
    case AdaptiveAction::kScaleOut:
      return "scale-out";
    case AdaptiveAction::kScaleIn:
      return "scale-in";
    case AdaptiveAction::kSelfHeal:
      return "self-heal";
  }
  return "unknown";
}

AdaptiveController::AdaptiveController(const Classification& base,
                                       Allocator* allocator,
                                       AdaptiveOptions options)
    : base_(base), allocator_(allocator), options_(std::move(options)),
      physical_(options_.etl) {}

Status AdaptiveController::Install(size_t nodes) {
  if (nodes == 0) return Status::InvalidArgument("nodes must be > 0");
  QCAP_ASSIGN_OR_RETURN(
      alloc_, allocator_->Allocate(base_, HomogeneousBackends(nodes)));
  nodes_ = nodes;
  alive_.assign(nodes_, true);
  degrade_.assign(nodes_, 1.0);
  std::vector<double> mix;
  mix.reserve(base_.NumClasses());
  for (const QueryClass& c : base_.reads) mix.push_back(c.weight);
  for (const QueryClass& c : base_.updates) mix.push_back(c.weight);
  serving_mixes_.assign(1, std::move(mix));
  window_.clear();
  history_.clear();
  transitions_.clear();
  drift_reallocs_ = 0;
  cooldown_ = 0;
  pending_after_ = static_cast<size_t>(-1);
  bucket_index_ = 0;
  return Status::OK();
}

Classification AdaptiveController::WithMix(
    const std::vector<double>& mix) const {
  Classification cls = base_;
  double total = 0.0;
  for (double v : mix) total += std::max(v, kMixFloor);
  const double inv = total > 0.0 ? 1.0 / total : 1.0;
  for (size_t r = 0; r < cls.reads.size(); ++r) {
    cls.reads[r].weight = std::max(mix[r], kMixFloor) * inv;
  }
  for (size_t u = 0; u < cls.updates.size(); ++u) {
    cls.updates[u].weight =
        std::max(mix[cls.reads.size() + u], kMixFloor) * inv;
  }
  return cls;
}

std::vector<double> AdaptiveController::ObservedMix(
    const std::vector<uint64_t>& counts) const {
  std::vector<double> mix(base_.NumClasses(), 0.0);
  double total = 0.0;
  for (size_t r = 0; r < base_.reads.size(); ++r) {
    mix[r] = static_cast<double>(counts[r]) * base_.reads[r].mean_cost;
    total += mix[r];
  }
  for (size_t u = 0; u < base_.updates.size(); ++u) {
    const size_t c = base_.reads.size() + u;
    mix[c] = static_cast<double>(counts[c]) * base_.updates[u].mean_cost;
    total += mix[c];
  }
  if (total <= 0.0) return {};
  for (double& v : mix) v /= total;
  return mix;
}

std::vector<double> AdaptiveController::WindowMix() const {
  if (window_.empty()) return {};
  return MeanMix(window_, 0, window_.size());
}

double AdaptiveController::DriftOf(const std::vector<double>& mix) const {
  if (mix.empty() || serving_mixes_.empty()) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (const std::vector<double>& serving : serving_mixes_) {
    best = std::min(best, L1(mix, serving));
  }
  return best;
}

Status AdaptiveController::RunSlice(const BucketDemand& demand, double w0,
                                    double w1,
                                    const std::vector<FaultEvent>& external,
                                    uint64_t seed, AdaptiveStep* step,
                                    std::vector<uint64_t>* counts,
                                    double* busy_seconds,
                                    double* capacity_seconds,
                                    double* response_sum) {
  const double scale = options_.slice_seconds / options_.bucket_seconds;
  const double duration = (w1 - w0) * scale;
  if (duration <= 0.0) return Status::OK();
  const auto rel = [&](double t) {
    return std::max(0.0, (t - w0) * scale);
  };

  // Candidate fault events: persistent state first (so they apply before
  // anything else at t = 0), then ETL interference, then this window's
  // external events. kind: 0 = persistent, 1 = interference, 2 = external.
  struct Candidate {
    FaultEvent event;
    int kind;
  };
  std::vector<Candidate> candidates;
  for (size_t b = 0; b < nodes_; ++b) {
    if (!alive_[b]) {
      candidates.push_back(
          {FaultEvent{FaultEvent::Kind::kCrash, 0.0, b, 1.0}, 0});
    } else if (degrade_[b] != 1.0) {
      candidates.push_back(
          {FaultEvent{FaultEvent::Kind::kDegrade, 0.0, b, degrade_[b]}, 0});
    }
  }
  for (const InterferenceWindow& w : migration_.InterferenceIn(w0, w1)) {
    if (w.backend >= nodes_) continue;
    const double sticky = degrade_[w.backend];
    candidates.push_back({FaultEvent{FaultEvent::Kind::kDegrade,
                                     rel(w.begin_seconds), w.backend,
                                     sticky * w.factor},
                          1});
    if (w.end_seconds < w1) {
      candidates.push_back({FaultEvent{FaultEvent::Kind::kDegrade,
                                       rel(w.end_seconds), w.backend, sticky},
                            1});
    }
  }
  for (const FaultEvent& e : external) {
    if (e.time_seconds < w0 || e.time_seconds >= w1) continue;
    if (e.backend >= nodes_) continue;
    FaultEvent mapped = e;
    mapped.time_seconds = rel(e.time_seconds);
    candidates.push_back({mapped, 2});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.event.time_seconds < b.event.time_seconds;
                   });

  // Replay-filter: keep only events valid in sequence (the simulator
  // validates its fault plan strictly), and fold kept *external* events
  // into the persistent liveness/degrade state for the next interval.
  FaultPlan plan;
  std::vector<bool> up(nodes_, true);
  for (const Candidate& c : candidates) {
    const size_t b = c.event.backend;
    switch (c.event.kind) {
      case FaultEvent::Kind::kCrash:
        if (!up[b]) continue;
        up[b] = false;
        if (c.kind == 2) alive_[b] = false;
        break;
      case FaultEvent::Kind::kRecover:
        if (up[b]) continue;
        up[b] = true;
        if (c.kind == 2) {
          alive_[b] = true;
          degrade_[b] = 1.0;  // A repaired replacement rejoins at speed.
        }
        break;
      case FaultEvent::Kind::kDegrade:
        if (!up[b]) continue;
        if (!(c.event.factor > 0.0) || !std::isfinite(c.event.factor)) {
          continue;
        }
        if (c.kind == 2) degrade_[b] = c.event.factor;
        break;
    }
    plan.events.push_back(c.event);
  }

  SimulationConfig config = options_.sim;
  config.seed = seed;
  config.fault_plan = std::move(plan);
  config.failures.clear();
  config.track_class_mix = true;

  // The offered mix this interval: base weights scaled by the diurnal
  // multipliers (renormalized by WithMix). Locals must outlive the
  // simulator — it holds references.
  std::vector<double> offered(base_.NumClasses(), 0.0);
  for (size_t r = 0; r < base_.reads.size(); ++r) {
    offered[r] = base_.reads[r].weight;
  }
  for (size_t u = 0; u < base_.updates.size(); ++u) {
    offered[base_.reads.size() + u] = base_.updates[u].weight;
  }
  if (!demand.class_weight_scale.empty()) {
    if (demand.class_weight_scale.size() != offered.size()) {
      return Status::InvalidArgument(
          "class_weight_scale size does not match the classification");
    }
    for (size_t c = 0; c < offered.size(); ++c) {
      offered[c] *= demand.class_weight_scale[c];
    }
  }
  const Classification slice_cls = WithMix(offered);
  const std::vector<BackendSpec> backends = HomogeneousBackends(nodes_);
  QCAP_ASSIGN_OR_RETURN(
      ClusterSimulator sim,
      ClusterSimulator::Create(slice_cls, alloc_, backends, config));
  QCAP_ASSIGN_OR_RETURN(SimStats stats,
                        sim.RunOpen(duration, demand.offered_qps));

  step->p99_ms = std::max(step->p99_ms, stats.p99_response_seconds * 1e3);
  step->completed += stats.completed_total();
  step->failed += stats.failed_requests;
  step->rejected += stats.rejected_requests;
  for (double busy : stats.backend_busy_seconds) *busy_seconds += busy;
  *capacity_seconds += duration *
                       static_cast<double>(options_.sim.servers_per_backend) *
                       static_cast<double>(nodes_);
  *response_sum += stats.avg_response_seconds *
                   static_cast<double>(stats.completed_total());
  for (size_t c = 0; c < stats.class_completions.size(); ++c) {
    (*counts)[c] += stats.class_completions[c];
  }
  return Status::OK();
}

void AdaptiveController::SwapNow() {
  const bool heals = !transitions_.empty() && !transitions_.back().aborted &&
                     transitions_.back().action == AdaptiveAction::kSelfHeal;
  alloc_ = migration_.TakeTarget();
  nodes_ = alloc_.num_backends();
  // Only a self-heal provisions replacement hardware for crashed nodes;
  // every other transition was planned around the survivors, so liveness
  // carries over by index (nodes added by a scale-out join alive). Sticky
  // degrades describe hardware, which no migration fixes.
  if (heals) {
    alive_.assign(nodes_, true);
  } else {
    alive_.resize(nodes_, true);
  }
  degrade_.resize(nodes_, 1.0);
  serving_mixes_ = std::move(staged_mixes_);
  staged_mixes_.clear();
  if (staged_resets_drift_) drift_reallocs_ = 0;
  staged_resets_drift_ = false;
  cooldown_ = options_.cooldown_buckets;
  if (!transitions_.empty()) {
    TransitionRecord& record = transitions_.back();
    if (!record.aborted) {
      record.completed = true;
      pending_after_ = transitions_.size() - 1;
    }
  }
}

Status AdaptiveController::BeginTransition(AdaptiveAction action,
                                           std::string cause,
                                           const std::vector<double>& mix,
                                           size_t target_nodes,
                                           double decided_seconds,
                                           double p99_before_ms) {
  const Classification target_cls = WithMix(mix);
  QCAP_ASSIGN_OR_RETURN(
      Allocation target,
      allocator_->Allocate(target_cls, HomogeneousBackends(target_nodes)));

  // Dead nodes donate nothing to the ETL: match against the survivors.
  Allocation survivors = alloc_;
  for (size_t b = 0; b < nodes_; ++b) {
    if (!alive_[b]) survivors.ClearBackendRow(b);
  }
  QCAP_ASSIGN_OR_RETURN(TransitionPlan plan,
                        physical_.Plan(survivors, target, base_.catalog));
  QCAP_RETURN_NOT_OK(migration_.Begin(std::move(target),
                                      HomogeneousBackends(target_nodes), plan,
                                      decided_seconds, options_.migration));
  staged_mixes_.assign(1, mix);
  staged_resets_drift_ = false;

  TransitionRecord record;
  record.action = action;
  record.cause = std::move(cause);
  record.decided_seconds = decided_seconds;
  record.swap_seconds = migration_.swap_seconds();
  record.moved_bytes = plan.total_bytes;
  record.etl_seconds = migration_.etl_seconds();
  record.nodes_before = nodes_;
  record.nodes_after = target_nodes;
  record.p99_before_ms = p99_before_ms;
  transitions_.push_back(std::move(record));
  return Status::OK();
}

Status AdaptiveController::BeginResegmentation(double decided_seconds,
                                               double p99_before_ms) {
  // Split the observed-mix history into segments of stable mix: a new
  // segment starts where the next bucket's mix departs from the running
  // segment average by more than the threshold (the journal-level
  // SegmentJournal logic, applied to the control loop's own observations).
  std::vector<std::pair<size_t, size_t>> segments;
  size_t begin = 0;
  for (size_t i = 1; i < history_.size(); ++i) {
    const std::vector<double> avg = MeanMix(history_, begin, i);
    if (L1(avg, history_[i]) > options_.segment_split_threshold) {
      segments.emplace_back(begin, i);
      begin = i;
    }
  }
  segments.emplace_back(begin, history_.size());

  const std::vector<double> window_mix = WindowMix();
  if (segments.size() < 2) {
    // One stable segment: nothing to merge, fall back to a plain re-fit.
    ++drift_reallocs_;
    return BeginTransition(AdaptiveAction::kReallocate,
                           "drift (history has a single stable segment)",
                           window_mix, nodes_, decided_seconds, p99_before_ms);
  }

  std::vector<std::vector<double>> segment_mixes;
  std::vector<Allocation> per_segment;
  segment_mixes.reserve(segments.size());
  per_segment.reserve(segments.size());
  for (const auto& [seg_begin, seg_end] : segments) {
    segment_mixes.push_back(MeanMix(history_, seg_begin, seg_end));
    const Classification seg_cls = WithMix(segment_mixes.back());
    QCAP_ASSIGN_OR_RETURN(
        Allocation seg_alloc,
        allocator_->Allocate(seg_cls, HomogeneousBackends(nodes_)));
    per_segment.push_back(std::move(seg_alloc));
  }
  QCAP_ASSIGN_OR_RETURN(Allocation merged,
                        MergeAllocations(per_segment, base_.catalog));
  // Re-derive assignments of the merged placement for the current mix.
  const Classification window_cls = WithMix(window_mix);
  QCAP_ASSIGN_OR_RETURN(Allocation target,
                        PlacementForClassification(merged, window_cls));

  Allocation survivors = alloc_;
  for (size_t b = 0; b < nodes_; ++b) {
    if (!alive_[b]) survivors.ClearBackendRow(b);
  }
  QCAP_ASSIGN_OR_RETURN(TransitionPlan plan,
                        physical_.Plan(survivors, target, base_.catalog));
  QCAP_RETURN_NOT_OK(migration_.Begin(std::move(target),
                                      HomogeneousBackends(nodes_), plan,
                                      decided_seconds, options_.migration));
  staged_mixes_ = std::move(segment_mixes);
  staged_resets_drift_ = true;

  TransitionRecord record;
  record.action = AdaptiveAction::kResegment;
  record.cause = "repeated drift reallocations (" +
                 std::to_string(segments.size()) + " segments merged)";
  record.decided_seconds = decided_seconds;
  record.swap_seconds = migration_.swap_seconds();
  record.moved_bytes = plan.total_bytes;
  record.etl_seconds = migration_.etl_seconds();
  record.nodes_before = nodes_;
  record.nodes_after = nodes_;
  record.p99_before_ms = p99_before_ms;
  transitions_.push_back(std::move(record));
  return Status::OK();
}

Status AdaptiveController::Decide(double decided_seconds, AdaptiveStep* step) {
  const size_t dead =
      static_cast<size_t>(std::count(alive_.begin(), alive_.end(), false));
  step->dead_backends = dead;

  // Self-heal pre-empts everything, including an in-flight migration: a
  // crash that violates k-safety makes the planned target moot.
  if (dead > 0) {
    const Status safety =
        CheckKSafety(base_, alloc_, alive_, options_.k_safety);
    if (!safety.ok()) {
      // A self-heal already in flight IS the repair — let it finish,
      // unless liveness changed again since it was planned (another
      // crash): then its target is stale too and we re-plan.
      if (migration_.active() && !transitions_.empty() &&
          !transitions_.back().aborted &&
          transitions_.back().action == AdaptiveAction::kSelfHeal &&
          alive_ == heal_alive_snapshot_) {
        return Status::OK();
      }
      if (migration_.active()) {
        migration_.Abort();
        if (!transitions_.empty() && !transitions_.back().completed) {
          transitions_.back().aborted = true;
        }
        staged_mixes_.clear();
        staged_resets_drift_ = false;
      }
      step->decision = AdaptiveAction::kSelfHeal;
      heal_alive_snapshot_ = alive_;
      std::vector<double> mix = WindowMix();
      if (mix.empty()) mix = serving_mixes_.front();
      return BeginTransition(AdaptiveAction::kSelfHeal,
                             "k-safety violated: " + safety.message(), mix,
                             nodes_, decided_seconds, step->p99_ms);
    }
  }
  if (migration_.active()) return Status::OK();
  if (cooldown_ > 0) {
    --cooldown_;
    return Status::OK();
  }
  const std::vector<double> mix = WindowMix();
  if (mix.empty()) return Status::OK();

  const bool slo_violated = step->p99_ms > options_.slo_p99_ms;
  if (slo_violated && step->utilization > options_.scale_up_utilization &&
      nodes_ < options_.max_nodes) {
    step->decision = AdaptiveAction::kScaleOut;
    return BeginTransition(AdaptiveAction::kScaleOut,
                           "SLO violated under high utilization", mix,
                           nodes_ + 1, decided_seconds, step->p99_ms);
  }
  if (dead == 0 && nodes_ > options_.min_nodes &&
      step->utilization < options_.scale_down_utilization &&
      step->p99_ms <
          options_.slo_p99_ms * options_.scale_down_headroom) {
    step->decision = AdaptiveAction::kScaleIn;
    return BeginTransition(AdaptiveAction::kScaleIn,
                           "idle cluster well inside the SLO", mix,
                           nodes_ - 1, decided_seconds, step->p99_ms);
  }
  if (step->drift > options_.drift_threshold) {
    if (drift_reallocs_ >= options_.resegment_after && history_.size() >= 2) {
      step->decision = AdaptiveAction::kResegment;
      return BeginResegmentation(decided_seconds, step->p99_ms);
    }
    ++drift_reallocs_;
    step->decision = AdaptiveAction::kReallocate;
    return BeginTransition(AdaptiveAction::kReallocate,
                           "observed mix drifted off every serving mix", mix,
                           nodes_, decided_seconds, step->p99_ms);
  }
  return Status::OK();
}

Result<AdaptiveStep> AdaptiveController::Step(
    const BucketDemand& demand, const std::vector<FaultEvent>& faults) {
  if (nodes_ == 0) {
    return Status::InvalidArgument("Install() must run before Step()");
  }
  const double bucket_begin = demand.tod_seconds;
  const double bucket_end = bucket_begin + options_.bucket_seconds;
  const double epsilon = 1e-9 * options_.bucket_seconds;

  AdaptiveStep step;
  step.tod_seconds = bucket_begin;
  step.offered_qps = demand.offered_qps;
  const bool had_active = migration_.active();
  step.phase = migration_.PhaseAt(bucket_begin);

  std::vector<uint64_t> counts(base_.NumClasses(), 0);
  double busy = 0.0;
  double capacity = 0.0;
  double response_sum = 0.0;
  const uint64_t seed =
      options_.sim.seed ^ static_cast<uint64_t>(bucket_begin);

  if (had_active && migration_.swap_seconds() <= bucket_begin + epsilon) {
    // Caught up at (or before) the interval boundary: swap first.
    SwapNow();
    step.swapped = true;
    QCAP_RETURN_NOT_OK(RunSlice(demand, bucket_begin, bucket_end, faults,
                                seed, &step, &counts, &busy, &capacity,
                                &response_sum));
  } else if (had_active && migration_.swap_seconds() < bucket_end) {
    // The atomic cut-over lands inside this interval: simulate the part
    // before it on the old layout (under ETL interference), swap, then
    // simulate the remainder on the new one.
    const double swap_at = migration_.swap_seconds();
    QCAP_RETURN_NOT_OK(RunSlice(demand, bucket_begin, swap_at, faults, seed,
                                &step, &counts, &busy, &capacity,
                                &response_sum));
    SwapNow();
    step.swapped = true;
    QCAP_RETURN_NOT_OK(RunSlice(demand, swap_at, bucket_end, faults,
                                seed ^ kSwapSeedSalt, &step, &counts, &busy,
                                &capacity, &response_sum));
  } else {
    QCAP_RETURN_NOT_OK(RunSlice(demand, bucket_begin, bucket_end, faults,
                                seed, &step, &counts, &busy, &capacity,
                                &response_sum));
  }

  step.nodes = nodes_;
  step.avg_ms = step.completed > 0
                    ? response_sum / static_cast<double>(step.completed) * 1e3
                    : 0.0;
  const uint64_t offered = step.completed + step.failed + step.rejected;
  step.availability =
      offered > 0
          ? static_cast<double>(step.completed) / static_cast<double>(offered)
          : 1.0;
  step.utilization = capacity > 0.0 ? busy / capacity : 0.0;

  const std::vector<double> observed = ObservedMix(counts);
  if (!observed.empty()) {
    window_.push_back(observed);
    if (window_.size() > options_.window_buckets) {
      window_.erase(window_.begin());
    }
    history_.push_back(observed);
  }
  step.drift = DriftOf(WindowMix());

  // This interval ran (at least partly) under an active transition:
  // account it into the record's "during" metrics.
  if ((had_active || step.swapped) && !transitions_.empty()) {
    TransitionRecord& record = transitions_.back();
    if (!record.aborted) {
      record.p99_during_ms = std::max(record.p99_during_ms, step.p99_ms);
      record.availability_during =
          std::min(record.availability_during, step.availability);
    }
  }
  // First full post-swap interval: close out the pending record.
  if (pending_after_ != static_cast<size_t>(-1) && !step.swapped) {
    transitions_[pending_after_].p99_after_ms = step.p99_ms;
    pending_after_ = static_cast<size_t>(-1);
  }

  QCAP_RETURN_NOT_OK(Decide(bucket_end, &step));
  ++bucket_index_;
  return step;
}

Result<AdaptiveReport> AdaptiveController::ReplayDay(
    const std::vector<BucketDemand>& day, const FaultPlan& day_faults) {
  if (day.empty()) return Status::InvalidArgument("day must not be empty");
  const std::vector<FaultEvent> sorted = day_faults.Sorted();

  AdaptiveReport report;
  report.steps.reserve(day.size());
  uint64_t completed = 0;
  uint64_t offered = 0;
  size_t met = 0;
  for (const BucketDemand& demand : day) {
    std::vector<FaultEvent> external;
    for (const FaultEvent& e : sorted) {
      if (e.time_seconds >= demand.tod_seconds &&
          e.time_seconds < demand.tod_seconds + options_.bucket_seconds) {
        external.push_back(e);
      }
    }
    QCAP_ASSIGN_OR_RETURN(AdaptiveStep step, Step(demand, external));
    completed += step.completed;
    offered += step.completed + step.failed + step.rejected;
    if (step.p99_ms <= options_.slo_p99_ms) ++met;
    report.worst_p99_ms = std::max(report.worst_p99_ms, step.p99_ms);
    report.node_seconds +=
        static_cast<double>(step.nodes) * options_.bucket_seconds;
    report.steps.push_back(std::move(step));
  }
  report.transitions = transitions_;
  report.slo_attainment =
      static_cast<double>(met) / static_cast<double>(day.size());
  report.availability =
      offered > 0
          ? static_cast<double>(completed) / static_cast<double>(offered)
          : 1.0;
  for (const TransitionRecord& record : report.transitions) {
    if (!record.completed) continue;
    switch (record.action) {
      case AdaptiveAction::kReallocate:
        ++report.reallocations;
        break;
      case AdaptiveAction::kResegment:
        ++report.resegmentations;
        break;
      case AdaptiveAction::kScaleOut:
        ++report.scale_outs;
        break;
      case AdaptiveAction::kScaleIn:
        ++report.scale_ins;
        break;
      case AdaptiveAction::kSelfHeal:
        ++report.self_heals;
        break;
      case AdaptiveAction::kNone:
        break;
    }
  }
  return report;
}

}  // namespace qcap
