// Workload segmentation (Section 5): split a timestamped query history
// into segments of stable class mix with a sliding window, allocate each
// segment, and merge the allocations into one layout that is robust to the
// diurnal mix shift without reallocation.
#pragma once

#include <vector>

#include "alloc/allocator.h"
#include "common/status.h"
#include "engine/catalog.h"
#include "workload/classifier.h"
#include "workload/journal.h"

namespace qcap {

/// One time segment of the history.
struct Segment {
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
};

/// Segmentation parameters.
struct SegmentationOptions {
  /// Sliding-window length used to compare mixes (the paper uses one hour).
  double window_seconds = 3600.0;
  /// L1 distance between adjacent windows' mix vectors that starts a new
  /// segment.
  double mix_threshold = 0.25;
};

/// Splits \p journal (must be timestamped) into segments of stable query
/// mix. Adjacent windows whose class-share vectors differ by more than the
/// threshold start a new segment.
Result<std::vector<Segment>> SegmentJournal(const QueryJournal& journal,
                                            const SegmentationOptions& options);

/// Per-window share of executions per distinct query (utility for plots
/// and tests): result[w][q] for window w and journal query index q.
Result<std::vector<std::vector<double>>> WindowMixes(
    const QueryJournal& journal, double window_seconds);

/// Classifies and allocates each segment of \p journal separately, then
/// merges the per-segment allocations (min-transfer matching + placement
/// union) into one layout. Read/update assignments of the result follow
/// the first segment; the runtime scheduler balances within the merged
/// placement.
Result<Allocation> SegmentedAllocation(const QueryJournal& journal,
                                       const std::vector<Segment>& segments,
                                       const engine::Catalog& catalog,
                                       const ClassifierOptions& options,
                                       Allocator* allocator,
                                       const std::vector<BackendSpec>& backends);

/// Rebuilds \p placement for \p cls: keeps the per-backend fragment sets,
/// re-derives ROWA update pinning, and spreads each read class's weight
/// evenly over its capable backends. The result validates against \p cls.
Result<Allocation> PlacementForClassification(const Allocation& placement,
                                              const Classification& cls);

}  // namespace qcap
