// Deterministic, seedable pseudo-random number generation.
//
// All randomized components of the library (random allocation, memetic
// mutation, simulated arrival processes) draw from an explicitly seeded
// Rng so that every experiment is reproducible bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qcap {

/// \brief xoshiro256** PRNG seeded via SplitMix64.
///
/// Fast, high-quality, and fully deterministic for a given seed. Not
/// cryptographically secure (not needed here).
class Rng {
 public:
  /// Constructs a generator from a 64-bit \p seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // qcap-lint: hot-path begin
  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }
  // qcap-lint: hot-path end

  /// Uniform integer in [0, bound). \p bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Exponentially distributed value with the given \p mean.
  double NextExponential(double mean);

  /// Normally distributed value (Box-Muller).
  double NextGaussian(double mean, double stddev);

  /// True with probability \p p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples an index from a discrete distribution given by \p weights.
  /// Weights need not be normalized; all must be >= 0 and sum > 0.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of [first, last) index permutation helper.
  template <typename It>
  void Shuffle(It first, It last) {
    auto n = last - first;
    for (decltype(n) i = n - 1; i > 0; --i) {
      auto j = static_cast<decltype(n)>(NextBounded(static_cast<uint64_t>(i) + 1));
      std::swap(first[i], first[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_cache_ = 0.0;
};

}  // namespace qcap
