#include "common/status.h"

namespace qcap {

namespace {
const std::string kEmpty;

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kInfeasible: return "Infeasible";
    case StatusCode::kUnbounded: return "Unbounded";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::Infeasible(std::string msg) {
  return Status(StatusCode::kInfeasible, std::move(msg));
}
Status Status::Unbounded(std::string msg) {
  return Status(StatusCode::kUnbounded, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}

const std::string& Status::message() const {
  return state_ ? state_->message : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace qcap
