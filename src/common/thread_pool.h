// Shared worker-thread pool and data-parallel loop helper.
//
// The pool is the substrate for every parallel search in the library
// (island-model memetic allocation, parallel advisor candidates). It is
// deliberately simple: a fixed set of workers draining one FIFO queue.
// Two properties matter for callers:
//
//   1. Exceptions thrown inside a task are captured and rethrown from the
//      task's future (and from ParallelFor), never swallowed.
//   2. A thread blocked waiting for pool work may *help* by draining
//      pending tasks (RunOnePending), so nested ParallelFor calls issued
//      from inside a pool task cannot deadlock the pool.
//
// Parallel callers stay deterministic by construction: work items write to
// disjoint, pre-sized result slots, and any randomized state is owned by
// exactly one logical task (see alloc/memetic.h for the contract).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/annotations.h"

namespace qcap {

/// \brief Fixed-size worker pool with a FIFO task queue.
///
/// Construction spawns the workers; destruction drains nothing — queued
/// tasks are completed, then the workers join. Submit() may be called from
/// any thread, including from inside a running task.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers. 0 is allowed and creates an inert pool
  /// (size() == 0); ParallelFor treats such a pool as "run serially".
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1 (std::thread reports 0 when it
  /// cannot tell).
  static size_t DefaultThreads();

  /// Enqueues \p fn and returns a future for its result. Exceptions thrown
  /// by \p fn surface from future.get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs one pending task on the calling thread, if any is queued.
  /// Returns false when the queue was empty. Used by threads that would
  /// otherwise block on pool work (nested-parallelism deadlock avoidance).
  bool RunOnePending() QCAP_EXCLUDES(mu_);

 private:
  void WorkerLoop() QCAP_EXCLUDES(mu_);

  /// Joined only by the destructor; never mutated after construction.
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ QCAP_GUARDED_BY(mu_);
  Mutex mu_;
  /// condition_variable_any so it can wait on the annotated MutexLock
  /// (the wait's internal unlock/relock is invisible to the analysis and
  /// nets out to zero).
  std::condition_variable_any cv_;
  bool stop_ QCAP_GUARDED_BY(mu_) = false;
};

/// \brief Runs body(i) for every i in [0, n), distributing indices over
/// \p pool's workers plus the calling thread.
///
/// Serial fallback when \p pool is null, has no workers, or n <= 1.
/// Indices are claimed dynamically (an atomic cursor), so the mapping of
/// index to thread is unspecified — callers must keep per-index work
/// independent (write only to slot i). The call returns only after every
/// index has run; the first exception thrown by any body invocation is
/// rethrown on the calling thread.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace qcap
