#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace qcap {

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    const size_t end = s.find(sep, pos);
    if (end == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, end - pos));
    pos = end + 1;
  }
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatPercent(double v, int precision) {
  return FormatDouble(v * 100.0, precision) + "%";
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return FormatDouble(bytes, unit == 0 ? 0 : 1) + " " + kUnits[unit];
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace qcap
