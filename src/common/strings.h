// Small string/formatting helpers shared by reports, benches, and tests.
#pragma once

#include <string>
#include <vector>

namespace qcap {

/// Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits \p s on every occurrence of \p sep (empty fields preserved;
/// splitting "" yields one empty field).
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// Formats a double with \p precision fractional digits.
std::string FormatDouble(double v, int precision = 3);

/// Formats a fraction in [0,1] as a percentage, e.g. 0.254 -> "25.4%".
std::string FormatPercent(double v, int precision = 1);

/// Formats a byte count with binary units, e.g. "1.5 MiB".
std::string FormatBytes(double bytes);

/// Left-pads \p s with spaces to at least \p width characters.
std::string PadLeft(const std::string& s, size_t width);

/// Right-pads \p s with spaces to at least \p width characters.
std::string PadRight(const std::string& s, size_t width);

}  // namespace qcap
