// Thread-safety annotations (docs/LINT.md, "Lock discipline").
//
// The QCAP_* macros below document which mutex guards which state and
// which functions run with which locks held. They lower to clang's
// thread-safety attributes under clang — the `clang-thread-safety` CI job
// compiles the annotated modules with `-Wthread-safety -Werror` — and to
// nothing under other compilers. Either way the macro names stay visible
// in the source text, which is what `qcap_lint`'s cross-TU
// `guarded-field-unlocked-access` and `lock-order` rules parse, so the
// two analyzers cross-check each other: clang verifies the annotations
// against real control flow, qcap_lint verifies them on compilers without
// the analysis (and adds the project-wide lock-acquisition-order check).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <mutex>

#if defined(__clang__)
#define QCAP_TS_ATTR(x) __attribute__((x))
#else
#define QCAP_TS_ATTR(x)  // no-op: lint-visible marker only
#endif

/// Declares a class to be a lockable capability (a mutex-like type).
#define QCAP_CAPABILITY(name) QCAP_TS_ATTR(capability(name))

/// Declares a RAII class whose lifetime acquires/releases a capability.
#define QCAP_SCOPED_CAPABILITY QCAP_TS_ATTR(scoped_lockable)

/// The annotated field may only be read or written while holding \p x.
#define QCAP_GUARDED_BY(x) QCAP_TS_ATTR(guarded_by(x))

/// The data pointed to by the annotated pointer is guarded by \p x.
#define QCAP_PT_GUARDED_BY(x) QCAP_TS_ATTR(pt_guarded_by(x))

/// The annotated function must be called with the capability held.
#define QCAP_REQUIRES(...) QCAP_TS_ATTR(requires_capability(__VA_ARGS__))

/// The annotated function acquires the capability and returns holding it.
#define QCAP_ACQUIRE(...) QCAP_TS_ATTR(acquire_capability(__VA_ARGS__))

/// The annotated function releases the capability before returning.
#define QCAP_RELEASE(...) QCAP_TS_ATTR(release_capability(__VA_ARGS__))

/// The annotated function acquires the capability when it returns the
/// given value (e.g. try_lock returning true).
#define QCAP_TRY_ACQUIRE(...) QCAP_TS_ATTR(try_acquire_capability(__VA_ARGS__))

/// The annotated function must be called with the capability NOT held
/// (it acquires it itself; calling it while holding would deadlock).
#define QCAP_EXCLUDES(...) QCAP_TS_ATTR(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the named capability.
#define QCAP_RETURN_CAPABILITY(x) QCAP_TS_ATTR(lock_returned(x))

/// Opts one function out of the analysis (initialization paths, tests).
/// Every use must carry a comment explaining why the analysis is wrong.
#define QCAP_NO_THREAD_SAFETY_ANALYSIS QCAP_TS_ATTR(no_thread_safety_analysis)

/// Documentation-only: the annotated state is confined to a single thread
/// (or otherwise externally serialized by its owner), so it carries no
/// lock. Expands to nothing everywhere; qcap_lint treats it as a declared
/// decision — fields marked this way are exempt from the guarded-field
/// rule, and the marker makes the confinement claim auditable in review.
#define QCAP_THREAD_CONFINED(owner_doc)

namespace qcap {

/// \brief An annotated std::mutex.
///
/// libstdc++'s std::mutex carries no capability attribute, so clang's
/// analysis cannot track it; this zero-overhead wrapper restores the
/// attribute surface. Lock through MutexLock (below) — the std-style
/// lower-case methods exist so the type satisfies BasicLockable.
class QCAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QCAP_ACQUIRE() { mu_.lock(); }
  void unlock() QCAP_RELEASE() { mu_.unlock(); }
  bool try_lock() QCAP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII lock for qcap::Mutex (the project's std::lock_guard).
///
/// The lock()/unlock() methods make a MutexLock BasicLockable so a
/// std::condition_variable_any can wait on it (the wait releases and
/// re-acquires the underlying mutex); they are for condition-variable
/// waits only and must be balanced — the destructor unconditionally
/// releases.
class QCAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QCAP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() QCAP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() QCAP_ACQUIRE() { mu_.lock(); }
  void unlock() QCAP_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace qcap
