// Shared measurement primitives: live progress counters for long-running
// allocation searches and the exact-percentile response-time accumulator.
//
// These used to live in cluster/stats.h; they moved down to common/ so
// that the allocation-search layer (alloc/) and the serving layer (net/)
// can use them without depending on the cluster simulator — the module
// layering DAG (.qcap-layers) forbids alloc → cluster edges.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qcap {

/// \brief Thread-safe progress counters for a running allocation search.
///
/// The island-model memetic allocator (alloc/memetic.h) updates these from
/// its worker threads (relaxed atomics — counters, not synchronization);
/// an operator thread may read a consistent-enough snapshot at any time,
/// e.g. to drive a progress display while a large search runs.
struct SearchProgress {
  /// Generations completed, summed over all islands.
  std::atomic<uint64_t> generations{0};
  /// Cost-function evaluations (the search's unit of work).
  std::atomic<uint64_t> evaluations{0};
  /// Accepted local-search improvement moves (Eq. 21-26 hits).
  std::atomic<uint64_t> improvements{0};
  /// Inter-island best-solution migrations applied.
  std::atomic<uint64_t> migrations{0};
  /// Best scale factor seen so far (bit pattern of a double; starts at
  /// +infinity). Use best_scale()/RecordScale() instead of touching it.
  std::atomic<uint64_t> best_scale_bits;

  SearchProgress();

  /// Lowers the recorded best scale to \p scale if it improves on it.
  void RecordScale(double scale);
  /// Best scale recorded so far (+infinity until the first RecordScale).
  double best_scale() const;

  /// Resets every counter to its initial state.
  void Reset();

  /// One-line human-readable snapshot.
  std::string ToString() const;
};

/// Mean/max/percentile accumulator for response times. Samples are kept so
/// percentiles are exact (nearest-rank), not approximated.
class ResponseAccumulator {
 public:
  void Add(double seconds) {
    sum_ += seconds;
    if (seconds > max_) max_ = seconds;
    samples_.push_back(seconds);
  }
  double mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }
  double max() const { return max_; }
  uint64_t count() const { return samples_.size(); }

  /// Drops all samples, keeping their capacity (scratch reuse across runs).
  void Reset() {
    sum_ = 0.0;
    max_ = 0.0;
    samples_.clear();
  }
  /// Pre-grows sample storage for \p n Add() calls.
  void Reserve(size_t n) { samples_.reserve(n); }

  /// Nearest-rank percentile for \p p in (0, 1]. Total on degenerate
  /// input: 0 when no samples (never NaN — the serving metrics endpoint
  /// reads this on an idle server), out-of-range \p p clamps to [0, 1],
  /// and a NaN \p p selects the maximum sample.
  double Percentile(double p) const;

  /// p50/p95/p99 in one call: copies the samples into \p *scratch (reused,
  /// capacity kept) and runs three progressive nth_element selections, each
  /// restricted to the tail the previous one partitioned — same values as
  /// three Percentile() calls at a fraction of the selection work and no
  /// per-call allocation once \p scratch is warm.
  void Percentiles(std::vector<double>* scratch, double* p50, double* p95,
                   double* p99) const;

 private:
  double sum_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
};

}  // namespace qcap
