#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>

namespace qcap {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::DefaultThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Explicit loop rather than a predicate lambda: clang's thread-safety
      // analysis cannot see that the lambda runs under the wait's lock.
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the task's future.
  }
}

bool ThreadPool::RunOnePending() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t workers = pool == nullptr ? 0 : pool->size();
  if (workers == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // One shared cursor; every participating thread (workers + caller) claims
  // the next unclaimed index until the range is exhausted. shared_ptr keeps
  // the cursor alive even for tasks that start after the call returns a
  // rethrown exception path (it cannot — we always join — but cheap safety).
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto drain = [next, n, &body]() {
    for (size_t i = (*next)++; i < n; i = (*next)++) body(i);
  };

  const size_t helpers = std::min(workers, n - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t t = 0; t < helpers; ++t) futures.push_back(pool->Submit(drain));

  std::exception_ptr first_error;
  try {
    drain();
  } catch (...) {
    first_error = std::current_exception();
  }
  // Wait for every helper, running other queued pool work meanwhile so a
  // ParallelFor issued from inside a pool task cannot starve itself.
  for (std::future<void>& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool->RunOnePending()) std::this_thread::yield();
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qcap
