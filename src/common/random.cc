#include "common/random.h"

#include <cassert>
#include <cmath>

namespace qcap {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_cache_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_cache_ = r * std::sin(theta);
  have_gauss_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point tail: return last index.
}

}  // namespace qcap
