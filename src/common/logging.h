// Minimal leveled logging to stderr. Benches and examples use INFO; library
// code logs only at DEBUG (off by default) so test output stays quiet.
#pragma once

#include <sstream>
#include <string>

namespace qcap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted. Default: kWarning.
void SetLogLevel(LogLevel level);
/// Current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define QCAP_LOG(level)                                                 \
  ::qcap::internal::LogMessage(::qcap::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace qcap
