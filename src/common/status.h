// Status and Result<T> error handling, following the Arrow/RocksDB idiom:
// library code never throws; fallible operations return Status or Result<T>.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace qcap {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kInfeasible,       ///< An optimization problem has no feasible solution.
  kUnbounded,        ///< An optimization problem is unbounded.
  kResourceExhausted ///< A configured limit (time, iterations) was hit.
};

/// \brief Outcome of an operation that can fail.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// human-readable message. Statuses are cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given error \p code and \p message.
  Status(StatusCode code, std::string message);

  /// Returns an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status Unimplemented(std::string msg);
  static Status Internal(std::string msg);
  static Status Infeasible(std::string msg);
  static Status Unbounded(std::string msg);
  static Status ResourceExhausted(std::string msg);

  /// True iff the status is OK.
  bool ok() const { return state_ == nullptr; }
  /// The status code; kOk when ok().
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// The error message; empty when ok().
  const std::string& message() const;

  /// Renders the status as "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInfeasible() const { return code() == StatusCode::kInfeasible; }
  bool IsUnbounded() const { return code() == StatusCode::kUnbounded; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;  // null == OK
};

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding \p value.
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  /// Constructs a Result holding a non-OK \p status.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result must not hold an OK status");
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The status: OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  /// Borrow the value. Requires ok().
  const T& value() const& {
    assert(ok() && "value() called on errored Result");
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok() && "value() called on errored Result");
    return std::get<T>(data_);
  }
  /// Move the value out. Requires ok().
  T&& value() && {
    assert(ok() && "value() called on errored Result");
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise \p fallback.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller.
#define QCAP_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::qcap::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Assigns the value of a Result to `lhs`, propagating errors.
#define QCAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()
#define QCAP_ASSIGN_OR_RETURN(lhs, rexpr) \
  QCAP_ASSIGN_OR_RETURN_IMPL(QCAP_CONCAT_(_result_, __LINE__), lhs, rexpr)
#define QCAP_CONCAT_INNER_(a, b) a##b
#define QCAP_CONCAT_(a, b) QCAP_CONCAT_INNER_(a, b)

}  // namespace qcap
