#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace qcap {

SearchProgress::SearchProgress()
    : best_scale_bits(
          std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity())) {}

void SearchProgress::RecordScale(double scale) {
  const uint64_t bits = std::bit_cast<uint64_t>(scale);
  uint64_t current = best_scale_bits.load(std::memory_order_relaxed);
  // Positive doubles compare the same as their bit patterns, so a CAS loop
  // on the raw bits implements an atomic min.
  while (scale < std::bit_cast<double>(current) &&
         !best_scale_bits.compare_exchange_weak(current, bits,
                                                std::memory_order_relaxed)) {
  }
}

double SearchProgress::best_scale() const {
  return std::bit_cast<double>(best_scale_bits.load(std::memory_order_relaxed));
}

void SearchProgress::Reset() {
  generations.store(0, std::memory_order_relaxed);
  evaluations.store(0, std::memory_order_relaxed);
  improvements.store(0, std::memory_order_relaxed);
  migrations.store(0, std::memory_order_relaxed);
  best_scale_bits.store(
      std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
}

std::string SearchProgress::ToString() const {
  const double scale = best_scale();
  return "generations=" + std::to_string(generations.load()) +
         ", evaluations=" + std::to_string(evaluations.load()) +
         ", improvements=" + std::to_string(improvements.load()) +
         ", migrations=" + std::to_string(migrations.load()) +
         ", best_scale=" +
         (std::isinf(scale) ? std::string("inf") : FormatDouble(scale, 4));
}

namespace {

/// Nearest-rank index (0-based) of percentile \p p among \p n samples.
/// Total: n == 0 maps to index 0 (callers with no samples must not
/// dereference, but the index itself stays in range instead of
/// underflowing to SIZE_MAX), and a NaN \p p — e.g. a quantile computed
/// from other NaN-poisoned stats — selects the maximum instead of making
/// the double→size_t cast undefined.
size_t NearestRankIndex(double p, size_t n) {
  if (n == 0) return 0;
  if (std::isnan(p)) return n - 1;
  const double clamped = std::min(std::max(p, 0.0), 1.0);
  size_t rank = static_cast<size_t>(std::ceil(clamped * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return rank - 1;
}

}  // namespace

double ResponseAccumulator::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  const size_t k = NearestRankIndex(p, sorted.size());
  std::nth_element(sorted.begin(), sorted.begin() + k, sorted.end());
  return sorted[k];
}

void ResponseAccumulator::Percentiles(std::vector<double>* scratch,
                                      double* p50, double* p95,
                                      double* p99) const {
  if (samples_.empty()) {
    *p50 = *p95 = *p99 = 0.0;
    return;
  }
  *scratch = samples_;
  const size_t n = scratch->size();
  const size_t k50 = NearestRankIndex(0.50, n);
  const size_t k95 = NearestRankIndex(0.95, n);
  const size_t k99 = NearestRankIndex(0.99, n);
  // Nested selections: after placing the k50-th order statistic, everything
  // left of it is <= everything right, so the later (larger-rank) selections
  // only need the tail range. Order-statistic values are range-independent,
  // so each equals the value a full sort would put at that index.
  auto begin = scratch->begin();
  std::nth_element(begin, begin + k50, scratch->end());
  *p50 = (*scratch)[k50];
  std::nth_element(begin + k50, begin + k95, scratch->end());
  *p95 = (*scratch)[k95];
  std::nth_element(begin + k95, begin + k99, scratch->end());
  *p99 = (*scratch)[k99];
}

}  // namespace qcap
