// Analytical per-query cost estimation (Section 3.1: class weights can be
// computed from summed execution times *or a cost estimation, e.g., from
// the query optimizer* [43]). Used to weight journals when measured
// execution times are unavailable.
//
// The model is a coarse optimizer-style estimate:
//   read  = scanned-column bytes / scan rate
//           + rows touched * per-row CPU * join factor^(#tables - 1)
//   update = fixed statement overhead + row write cost + index maintenance
// Absolute values matter less than relative magnitudes: classification
// weights are normalized (Eq. 4).
#pragma once

#include "common/status.h"
#include "engine/catalog.h"
#include "workload/journal.h"

namespace qcap::engine {

/// Tunable constants of the estimator.
struct CostEstimatorParams {
  /// Sequential columnar scan rate.
  double scan_bytes_per_second = 150.0 * 1024 * 1024;
  /// CPU cost per row touched (predicate evaluation, tuple assembly).
  double seconds_per_row = 40e-9;
  /// Multiplier per additional joined table (hash build + probe overhead).
  double join_factor = 1.6;
  /// Fixed statement overhead (parse, plan, round trip).
  double statement_overhead_seconds = 150e-6;
  /// Write cost per updated/inserted row (WAL + heap).
  double seconds_per_written_row = 10e-6;
  /// Rows written per update statement (OLTP point writes).
  double rows_per_update = 1.0;
  /// Index maintenance cost per written row and index.
  double seconds_per_index_entry = 4e-6;
};

/// \brief Estimates per-execution costs from the schema catalog.
class CostEstimator {
 public:
  CostEstimator(const Catalog& catalog, CostEstimatorParams params = {})
      : catalog_(catalog), params_(params) {}

  /// Estimated seconds for one execution of \p query. Fails on unknown
  /// tables/columns.
  Result<double> EstimateSeconds(const Query& query) const;

  /// Returns a copy of \p journal with every query's cost replaced by the
  /// estimate (the optimizer-driven weighting mode).
  Result<QueryJournal> Reweight(const QueryJournal& journal) const;

 private:
  const Catalog& catalog_;
  CostEstimatorParams params_;
};

}  // namespace qcap::engine
