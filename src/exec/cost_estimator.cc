#include "exec/cost_estimator.h"

#include <algorithm>
#include <cmath>

namespace qcap::engine {

Result<double> CostEstimator::EstimateSeconds(const Query& query) const {
  if (query.accesses.empty()) {
    return Status::InvalidArgument("query '" + query.text +
                                   "' references no tables");
  }

  if (query.is_update) {
    // OLTP-style write: overhead + row writes + index maintenance on the
    // primary keys of every referenced table.
    double seconds = params_.statement_overhead_seconds;
    for (const auto& access : query.accesses) {
      QCAP_ASSIGN_OR_RETURN(const TableDef* def,
                            catalog_.FindTable(access.table));
      const double keys =
          std::max<size_t>(1, def->PrimaryKeyColumns().size());
      seconds += params_.rows_per_update *
                 (params_.seconds_per_written_row +
                  keys * params_.seconds_per_index_entry);
    }
    return seconds;
  }

  double scan_bytes = 0.0;
  double rows_touched = 0.0;
  for (const auto& access : query.accesses) {
    QCAP_ASSIGN_OR_RETURN(const TableDef* def, catalog_.FindTable(access.table));
    QCAP_ASSIGN_OR_RETURN(double rows, catalog_.TableRows(access.table));
    double fraction = 1.0;
    if (!access.partitions.empty()) {
      // Partition-aligned predicate: assume equal-size ranges; the
      // classifier's partition count is unknown here, so use the largest
      // referenced partition index + 1 as a floor for the divisor.
      int max_part = 0;
      for (int p : access.partitions) max_part = std::max(max_part, p);
      fraction = static_cast<double>(access.partitions.size()) /
                 static_cast<double>(max_part + 1);
      fraction = std::min(1.0, fraction);
    }
    rows_touched += rows * fraction;
    if (access.columns.empty()) {
      scan_bytes += static_cast<double>(def->RowWidth()) * rows * fraction;
    } else {
      for (const auto& col : access.columns) {
        QCAP_ASSIGN_OR_RETURN(double bytes,
                              catalog_.ColumnBytes(access.table, col));
        scan_bytes += bytes * fraction;
      }
    }
  }
  const double join_multiplier =
      std::pow(params_.join_factor,
               static_cast<double>(query.accesses.size()) - 1.0);
  return params_.statement_overhead_seconds +
         scan_bytes / params_.scan_bytes_per_second +
         rows_touched * params_.seconds_per_row * join_multiplier;
}

Result<QueryJournal> CostEstimator::Reweight(const QueryJournal& journal) const {
  QueryJournal out;
  const auto& queries = journal.queries();
  for (size_t i = 0; i < queries.size(); ++i) {
    Query q = queries[i];
    QCAP_ASSIGN_OR_RETURN(q.cost, EstimateSeconds(q));
    out.Record(q, journal.count(i));
  }
  return out;
}

}  // namespace qcap::engine
