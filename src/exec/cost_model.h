// Per-query service-time cost model for the cluster simulator.
//
// Service time of one execution of a query class on a backend:
//
//   t = mean_cost(C) * (io_fraction * scan_scale(C) * cache_penalty(B)
//                       + (1 - io_fraction)) / speed(B)
//
// where
//   - mean_cost(C): measured per-execution cost from the journal (seconds);
//   - scan_scale(C): bytes the class touches at the classification
//     granularity relative to touching its tables in full — this is what
//     makes column-granular allocations faster (vertical partitioning
//     improves transfer from disk, Section 4.1);
//   - cache_penalty(B): grows as the backend's resident data exceeds its
//     memory — this is what makes specialized backends super-linear
//     ("less data is stored on the nodes and the caching improves");
//   - speed(B): the backend's relative processing power (heterogeneity).
#pragma once

#include <vector>

#include "engine/catalog.h"
#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap::engine {

/// Tunable parameters of the service-time model.
struct CostModelParams {
  /// Fraction of query time that scales with scanned bytes and caching.
  double io_fraction = 0.7;
  /// Memory available for caching on each backend, in bytes.
  double memory_bytes = 2.0 * 1024 * 1024 * 1024;
  /// Penalty multiplier on the I/O part when nothing fits in memory.
  double max_cache_penalty = 3.0;
  /// Per-query multiplier for column-granular execution overhead (stitching
  /// vertical fragments back together; the paper observed a small slowdown
  /// for column-based allocation on TPC-App).
  double column_overhead = 1.05;
  /// Buffer-pool mixing: a backend interleaving k distinct query classes
  /// behaves as if its working set were inflated by
  /// (1 + mixing_per_class * (k - 1)). This is what makes specialized
  /// backends cache better than full replicas serving every class
  /// (Section 4.1: "the backends are specialized on single query classes,
  /// less data is stored on the nodes and, hence, the caching improves").
  double mixing_per_class = 0.10;
};

/// \brief Computes deterministic service times for (class, backend) pairs
/// under a concrete allocation.
class CostModel {
 public:
  explicit CostModel(CostModelParams params = {}) : params_(params) {}

  /// Service seconds for one execution of \p c on backend \p b.
  /// \p resident_bytes is the backend's total stored bytes under the
  /// current allocation; \p speed is its relative performance times the
  /// number of backends (1.0 in a homogeneous cluster).
  double ServiceSeconds(const Classification& cls, const QueryClass& c,
                        double resident_bytes, double speed) const;

  /// Precomputes the service time of every (class, backend) pair:
  /// result[class][backend], read classes first, then update classes.
  ///
  /// The cache penalty is driven by each backend's *working set* — the
  /// union of fragments of the classes the allocation assigns to it — not
  /// its raw stored bytes: a fully replicated backend serves every class
  /// (working set = whole database), while a specialized backend touches
  /// only its classes' data, which is the caching advantage the paper
  /// observes for partial replication.
  std::vector<std::vector<double>> ServiceMatrix(
      const Classification& cls, const Allocation& alloc,
      const std::vector<BackendSpec>& backends) const;

  /// Bytes of the union of fragments of all classes assigned to backend
  /// \p b (reads with positive assignment plus pinned update classes).
  static double WorkingSetBytes(const Classification& cls,
                                const Allocation& alloc, size_t b);

  const CostModelParams& params() const { return params_; }

 private:
  double ScanScale(const Classification& cls, const QueryClass& c) const;

  CostModelParams params_;
};

}  // namespace qcap::engine
