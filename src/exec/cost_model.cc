#include "exec/cost_model.h"

#include <algorithm>
#include <map>

namespace qcap::engine {

double CostModel::ScanScale(const Classification& cls,
                            const QueryClass& c) const {
  // Bytes touched at the classification granularity...
  const double fragment_bytes = cls.catalog.SetBytes(c.fragments);
  // ... relative to touching the referenced tables in full.
  std::map<std::string, double> table_bytes;
  for (FragmentId f : c.fragments) {
    const auto& frag = cls.catalog.Get(f);
    table_bytes.try_emplace(frag.table, 0.0);
  }
  // Sum full table sizes over the fragment catalog (all fragments of the
  // referenced tables).
  double full_bytes = 0.0;
  for (const auto& frag : cls.catalog.fragments()) {
    auto it = table_bytes.find(frag.table);
    if (it != table_bytes.end()) full_bytes += frag.size_bytes;
  }
  if (full_bytes <= 0.0) return 1.0;
  return std::min(1.0, fragment_bytes / full_bytes);
}

double CostModel::ServiceSeconds(const Classification& cls, const QueryClass& c,
                                 double resident_bytes, double speed) const {
  const double scan_scale = ScanScale(cls, c);
  double cache_penalty = 1.0;
  if (resident_bytes > params_.memory_bytes && params_.memory_bytes > 0.0) {
    const double miss = 1.0 - params_.memory_bytes / resident_bytes;
    cache_penalty = 1.0 + (params_.max_cache_penalty - 1.0) * miss;
  }
  double io = params_.io_fraction * scan_scale * cache_penalty;
  double cpu = 1.0 - params_.io_fraction;
  double overhead = 1.0;
  // Column-granular execution stitches vertical fragments back together.
  if (!c.fragments.empty() &&
      cls.catalog.Get(c.fragments.front()).kind == FragmentKind::kColumn) {
    overhead = params_.column_overhead;
  }
  return c.mean_cost * (io + cpu) * overhead / std::max(speed, 1e-9);
}

double CostModel::WorkingSetBytes(const Classification& cls,
                                  const Allocation& alloc, size_t b) {
  // Runtime working set: the least-pending-first scheduler can send any
  // class the backend is *capable* of (holds all data for), so eligibility
  // rather than the planned assignment determines what the backend's cache
  // actually sees.
  FragmentSet working;
  const FragmentSet held = alloc.BackendFragments(b);
  for (const auto& r : cls.reads) {
    if (IsSubset(r.fragments, held)) {
      working = SetUnion(working, r.fragments);
    }
  }
  for (const auto& u : cls.updates) {
    if (Intersects(u.fragments, held)) {
      working = SetUnion(working, u.fragments);
    }
  }
  return cls.catalog.SetBytes(working);
}

std::vector<std::vector<double>> CostModel::ServiceMatrix(
    const Classification& cls, const Allocation& alloc,
    const std::vector<BackendSpec>& backends) const {
  const size_t n = backends.size();
  std::vector<double> resident(n);
  for (size_t b = 0; b < n; ++b) {
    // Mixing counts the classes the backend is eligible for at runtime.
    const FragmentSet held = alloc.BackendFragments(b);
    size_t classes_served = 0;
    for (const auto& r : cls.reads) {
      if (IsSubset(r.fragments, held)) ++classes_served;
    }
    for (const auto& u : cls.updates) {
      if (Intersects(u.fragments, held)) ++classes_served;
    }
    const double mixing =
        classes_served > 1
            ? 1.0 + params_.mixing_per_class *
                        static_cast<double>(classes_served - 1)
            : 1.0;
    resident[b] = WorkingSetBytes(cls, alloc, b) * mixing;
  }
  std::vector<std::vector<double>> out;
  out.reserve(cls.NumClasses());
  auto row = [&](const QueryClass& c) {
    std::vector<double> r(n);
    for (size_t b = 0; b < n; ++b) {
      const double speed =
          backends[b].relative_load * static_cast<double>(n);
      r[b] = ServiceSeconds(cls, c, resident[b], speed);
    }
    return r;
  };
  for (const auto& c : cls.reads) out.push_back(row(c));
  for (const auto& c : cls.updates) out.push_back(row(c));
  return out;
}

}  // namespace qcap::engine
