// Scan micro-executor and cost-model calibration.
//
// Executes real column scans over generated data, measures the achieved
// bytes-per-second, and derives the service-time model's scan term from
// measurement instead of assumption (the substitution for profiling the
// paper's PostgreSQL/MySQL backends).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/cost_model.h"
#include "engine/table.h"

namespace qcap::engine {

/// Result of one measured scan.
struct ScanStats {
  uint64_t rows = 0;
  uint64_t bytes = 0;
  double seconds = 0.0;
  /// Fold of the scanned values (prevents the scan from being optimized
  /// away; also usable as a content checksum in tests).
  uint64_t checksum = 0;

  double bytes_per_second() const {
    return seconds > 0.0 ? static_cast<double>(bytes) / seconds : 0.0;
  }
};

/// Scans the named columns of \p table once (all columns if empty),
/// folding every value into a checksum.
Result<ScanStats> ScanColumns(const Table& table,
                              const std::vector<std::string>& columns = {});

/// Counts rows of \p column whose integer value is below \p bound
/// (kInt32/kInt64/kDate columns only).
Result<uint64_t> CountIntBelow(const Table& table, const std::string& column,
                               int64_t bound);

/// Sums a decimal column.
Result<double> SumDecimal(const Table& table, const std::string& column);

/// Calibration outcome.
struct CalibrationReport {
  /// Measured in-memory columnar scan rate.
  double scan_bytes_per_second = 0.0;
  /// Seconds of fixed per-query overhead assumed by the model.
  double per_query_overhead_seconds = 0.0;
  /// io_fraction derived for a query of \p reference_bytes at the measured
  /// rate against the reference query cost.
  double suggested_io_fraction = 0.0;
};

/// Generates a sample of \p catalog (at \p row_fraction of its rows),
/// scans it, and derives cost-model parameters. \p reference_cost_seconds
/// and \p reference_bytes describe a representative query of the workload
/// (e.g. TPC-H Q1: ~12 s over the full lineitem width at SF 1).
Result<CalibrationReport> CalibrateCostModel(const Catalog& catalog,
                                             double row_fraction,
                                             double reference_cost_seconds,
                                             double reference_bytes);

}  // namespace qcap::engine
