#include "exec/executor.h"

#include <algorithm>
#include <chrono>

#include "engine/datagen.h"

namespace qcap::engine {

namespace {

uint64_t FoldColumn(const Column& column, uint64_t seed) {
  uint64_t h = seed;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  for (int64_t v : column.ints()) mix(static_cast<uint64_t>(v));
  for (double v : column.doubles()) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  for (const auto& s : column.strings()) {
    uint64_t partial = s.size();
    for (size_t i = 0; i < s.size(); i += 8) {
      uint64_t chunk = 0;
      __builtin_memcpy(&chunk, s.data() + i, std::min<size_t>(8, s.size() - i));
      partial = partial * 31 + chunk;
    }
    mix(partial);
  }
  return h;
}

}  // namespace

Result<ScanStats> ScanColumns(const Table& table,
                              const std::vector<std::string>& columns) {
  std::vector<const Column*> targets;
  if (columns.empty()) {
    for (size_t i = 0; i < table.NumColumns(); ++i) {
      targets.push_back(&table.column(i));
    }
  } else {
    for (const auto& name : columns) {
      QCAP_ASSIGN_OR_RETURN(const Column* col, table.FindColumn(name));
      targets.push_back(col);
    }
  }
  ScanStats stats;
  stats.rows = table.NumRows();
  // qcap-lint: allow(nondeterministic-call) -- times the real scan, not simulated time
  const auto start = std::chrono::steady_clock::now();
  for (const Column* col : targets) {
    stats.checksum = FoldColumn(*col, stats.checksum);
    stats.bytes += col->PayloadBytes();
  }
  // qcap-lint: allow(nondeterministic-call) -- times the real scan, not simulated time
  const auto stop = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(stop - start).count();
  return stats;
}

Result<uint64_t> CountIntBelow(const Table& table, const std::string& column,
                               int64_t bound) {
  QCAP_ASSIGN_OR_RETURN(const Column* col, table.FindColumn(column));
  if (col->ints().empty() && col->size() != 0) {
    return Status::InvalidArgument("column '" + column +
                                   "' is not integer-typed");
  }
  uint64_t count = 0;
  for (int64_t v : col->ints()) {
    if (v < bound) ++count;
  }
  return count;
}

Result<double> SumDecimal(const Table& table, const std::string& column) {
  QCAP_ASSIGN_OR_RETURN(const Column* col, table.FindColumn(column));
  if (col->doubles().empty() && col->size() != 0) {
    return Status::InvalidArgument("column '" + column +
                                   "' is not decimal-typed");
  }
  double sum = 0.0;
  for (double v : col->doubles()) sum += v;
  return sum;
}

Result<CalibrationReport> CalibrateCostModel(const Catalog& catalog,
                                             double row_fraction,
                                             double reference_cost_seconds,
                                             double reference_bytes) {
  if (row_fraction <= 0.0 || reference_cost_seconds <= 0.0 ||
      reference_bytes <= 0.0) {
    return Status::InvalidArgument("calibration inputs must be positive");
  }
  DataGenOptions options;
  options.row_fraction = row_fraction;
  options.min_rows = 1024;
  QCAP_ASSIGN_OR_RETURN(auto database, GenerateDatabase(catalog, options));

  // Measure aggregated scan throughput over the whole sample; repeat the
  // pass a few times and keep the best (cold caches on the first pass).
  double best_rate = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    uint64_t bytes = 0;
    double seconds = 0.0;
    for (const auto& [name, table] : database) {
      QCAP_ASSIGN_OR_RETURN(ScanStats stats, ScanColumns(table));
      bytes += stats.bytes;
      seconds += stats.seconds;
    }
    if (seconds > 0.0) {
      best_rate = std::max(best_rate, static_cast<double>(bytes) / seconds);
    }
  }
  if (best_rate <= 0.0) {
    return Status::Internal("scan measurement produced no timing");
  }

  CalibrationReport report;
  report.scan_bytes_per_second = best_rate;
  // How much of the reference query's measured cost is explained by pure
  // column scanning at the measured rate? The remainder is CPU (joins,
  // aggregation, tuple overhead) -> that split is the io_fraction.
  const double scan_seconds = reference_bytes / best_rate;
  report.suggested_io_fraction =
      std::clamp(scan_seconds / reference_cost_seconds, 0.05, 0.95);
  report.per_query_overhead_seconds =
      reference_cost_seconds * (1.0 - report.suggested_io_fraction);
  return report;
}

}  // namespace qcap::engine
