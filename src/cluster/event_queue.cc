#include "cluster/event_queue.h"

namespace qcap {

void EventQueue::Reserve(size_t capacity) {
  arena_.reserve(capacity);
  free_.reserve(capacity);
  heap_.reserve(capacity);
}

void EventQueue::Clear() {
  arena_.clear();
  free_.clear();
  heap_.clear();
}

}  // namespace qcap
