#include "cluster/pending_index.h"

#include <algorithm>
#include <map>

namespace qcap {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// First leaf position in [lo, hi) whose key equals \p m, descending the
/// 1-indexed segment tree at \p t (node covers [node_lo, node_hi)).
/// Subtree minima are >= m (m is the group minimum), so any subtree whose
/// root differs from m is pruned whole; left-first descent returns the
/// earliest position. Returns PendingIndex::kNone if no such leaf.
size_t FindFirstAtMin(const uint64_t* t, size_t node, size_t node_lo,
                      size_t node_hi, size_t lo, size_t hi, uint64_t m) {
  if (node_hi <= lo || hi <= node_lo || t[node] != m) {
    return PendingIndex::kNone;
  }
  if (node_hi - node_lo == 1) return node_lo;
  const size_t mid = (node_lo + node_hi) / 2;
  const size_t left =
      FindFirstAtMin(t, 2 * node, node_lo, mid, lo, hi, m);
  if (left != PendingIndex::kNone) return left;
  return FindFirstAtMin(t, 2 * node + 1, mid, node_hi, lo, hi, m);
}

}  // namespace

void PendingIndex::Build(
    const std::vector<std::vector<size_t>>& candidates_per_class,
    size_t num_backends) {
  class_group_.assign(candidates_per_class.size(), 0);
  groups_.clear();
  cand_.clear();
  tree_.clear();
  keys_.assign(num_backends, 0);

  // Classes sharing a candidate list share one tree.
  std::map<std::vector<size_t>, size_t> dedup;
  for (size_t r = 0; r < candidates_per_class.size(); ++r) {
    const auto& candidates = candidates_per_class[r];
    const auto inserted = dedup.emplace(candidates, groups_.size());
    if (inserted.second) {
      Group g;
      g.count = candidates.size();
      g.width = NextPow2(std::max<size_t>(g.count, 1));
      g.cand_offset = cand_.size();
      g.tree_offset = tree_.size();
      cand_.insert(cand_.end(), candidates.begin(), candidates.end());
      // Node 0 unused; leaves at [width, width + count); padding leaves
      // beyond count stay at kDeadKey so they never win. Internal nodes
      // are recomputed by every Pick, so their initial value is moot.
      tree_.resize(g.tree_offset + 2 * g.width, kDeadKey);
      groups_.push_back(g);
    }
    class_group_[r] = inserted.first->second;
  }
}

void PendingIndex::ResetKeys() {
  std::fill(keys_.begin(), keys_.end(), uint64_t{0});
}

// qcap-lint: hot-path begin
size_t PendingIndex::Pick(size_t class_index, size_t start) {
  const Group& g = groups_[class_group_[class_index]];
  uint64_t* t = tree_.data() + g.tree_offset;
  // Refresh from the current keys: real leaves then the internal mins,
  // bottom-up over one contiguous block (padding leaves keep kDeadKey).
  const size_t* cand = cand_.data() + g.cand_offset;
  for (size_t pos = 0; pos < g.count; ++pos) {
    t[g.width + pos] = keys_[cand[pos]];
  }
  for (size_t j = g.width - 1; j >= 1; --j) {
    t[j] = std::min(t[2 * j], t[2 * j + 1]);
  }
  const uint64_t m = t[1];
  if (m == kDeadKey) return kNone;
  size_t pos = FindFirstAtMin(t, 1, 0, g.width, start, g.count, m);
  if (pos == kNone) pos = FindFirstAtMin(t, 1, 0, g.width, 0, start, m);
  return cand[pos];
}
// qcap-lint: hot-path end

}  // namespace qcap
