// Simulated backend DBMS: a FIFO work queue with a configurable number of
// parallel connections (servers), matching the prototype's
// one-queue-per-backend design (Figure 3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace qcap {

/// One unit of work queued on a backend.
struct BackendTask {
  uint64_t request_id = 0;   ///< Logical request this task belongs to.
  double service_seconds = 0.0;
  double enqueue_time = 0.0;
};

/// \brief FIFO queue + k parallel servers for one backend.
class BackendNode {
 public:
  explicit BackendNode(size_t servers = 1) : server_free_at_(servers, 0.0) {}

  /// Number of queued-but-not-started tasks plus tasks in service: the
  /// "pending requests" the least-pending-first scheduler compares.
  size_t pending() const { return queue_.size() + in_service_; }

  /// Enqueues a task.
  void Enqueue(const BackendTask& task) { queue_.push_back(task); }

  /// True if a server is free at \p now and a task is waiting.
  bool CanStart(double now) const;

  /// Starts the next task on the earliest-free server; returns the task
  /// and its completion time via out-params. Requires CanStart(now) or a
  /// queued task (the start time is max(now, server free time)).
  /// \p service_scale stretches the task's service time (straggler mode).
  bool StartNext(double now, BackendTask* task, double* completion_time,
                 double service_scale = 1.0);

  /// Marks one task completed (bookkeeping for pending()).
  void FinishOne(double busy_seconds);

  /// Removes and returns all queued (not yet started) tasks — used when
  /// the backend crashes.
  std::vector<BackendTask> DrainQueue();

  /// Crash: drains the queue (returned for re-dispatch / replica lag) and
  /// resets the servers, forgetting in-flight work. Accumulated busy-time
  /// accounting survives (the work done before the crash was real).
  std::vector<BackendTask> Crash();

  /// Earliest time any server becomes free.
  double NextFreeTime() const;

  bool HasQueued() const { return !queue_.empty(); }
  double busy_seconds() const { return busy_seconds_; }
  uint64_t completed_tasks() const { return completed_tasks_; }

 private:
  std::deque<BackendTask> queue_;
  std::vector<double> server_free_at_;
  size_t in_service_ = 0;
  double busy_seconds_ = 0.0;
  uint64_t completed_tasks_ = 0;
};

}  // namespace qcap
