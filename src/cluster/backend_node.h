// Simulated backend DBMS: a FIFO work queue with a configurable number of
// parallel connections (servers), matching the prototype's
// one-queue-per-backend design (Figure 3).
//
// The queue is a ring buffer over a flat vector (not std::deque): steady
// state pushes and pops touch no allocator, and Reset() keeps the ring's
// capacity so a reused node runs allocation-free after warm-up. The ring's
// capacity is a power of two, so FIFO indexing is a mask, not a division.
// The per-task operations (Enqueue, TryStart, FinishOne) are defined
// inline here so the simulator's drain loop compiles them in place.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qcap {

/// One unit of work queued on a backend.
struct BackendTask {
  uint64_t request_id = 0;   ///< Logical request this task belongs to.
  double service_seconds = 0.0;
  double enqueue_time = 0.0;
};

/// \brief FIFO queue + k parallel servers for one backend.
class BackendNode {
 public:
  explicit BackendNode(size_t servers = 1) : server_free_at_(servers, 0.0) {}

  /// Returns the node to its initial state with \p servers connections,
  /// keeping the ring buffer's capacity (scratch reuse across runs).
  void Reset(size_t servers);

  /// Number of queued-but-not-started tasks plus tasks in service: the
  /// "pending requests" the least-pending-first scheduler compares.
  size_t pending() const { return count_ + in_service_; }

  // qcap-lint: hot-path begin
  /// Enqueues a task.
  void Enqueue(const BackendTask& task) {
    if (count_ == ring_.size()) Grow();
    ring_[(head_ + count_) & mask_] = task;
    ++count_;
  }

  /// True if a server is free at \p now and a task is waiting.
  bool CanStart(double now) const {
    if (count_ == 0) return false;
    for (double t : server_free_at_) {
      if (t <= now) return true;
    }
    return false;
  }

  /// Starts the next task on the earliest-free server; returns the task
  /// and its completion time via out-params. Requires CanStart(now) or a
  /// queued task (the start time is max(now, server free time)).
  /// \p service_scale stretches the task's service time (straggler mode).
  bool StartNext(double now, BackendTask* task, double* completion_time,
                 double service_scale = 1.0) {
    if (count_ == 0) return false;
    // Earliest-free server.
    size_t best = 0;
    for (size_t i = 1; i < server_free_at_.size(); ++i) {
      if (server_free_at_[i] < server_free_at_[best]) best = i;
    }
    StartOn(best, std::max(now, server_free_at_[best]), task, completion_time,
            service_scale);
    RecomputeFreeMin();
    return true;
  }

  /// CanStart + StartNext in one server scan: starts the next queued task
  /// iff some server is free at \p now, reporting the chosen server in
  /// \p *server (the simulator's completion-calendar slot). The
  /// earliest-free server is free at \p now exactly when any server is, so
  /// this dispatches the same task to the same server at the same start
  /// time as the guarded pair.
  bool TryStart(double now, BackendTask* task, double* completion_time,
                double service_scale, size_t* server) {
    if (count_ == 0 || free_min_ > now) return false;
    // Free times are non-negative, so packing a time's IEEE-754 bit
    // pattern above its server index gives one integer whose < order is
    // the (time, first index) order — the min-reduce below compiles to
    // branch-free compare/select chains instead of a mispredicting scan.
    using Packed = unsigned __int128;
    const double* f = server_free_at_.data();
    const size_t n = server_free_at_.size();
    auto pack = [](double t, size_t i) {
      return (Packed{std::bit_cast<uint64_t>(t)} << 64) | i;
    };
    Packed best = pack(f[0], 0);
    for (size_t i = 1; i < n; ++i) {
      const Packed p = pack(f[i], i);
      best = p < best ? p : best;
    }
    const size_t idx = static_cast<size_t>(static_cast<uint64_t>(best));
    *server = idx;
    StartOn(idx, now, task, completion_time, service_scale);
    // Refresh the earliest-free cache with a plain min over the (just
    // updated) free times: cheaper than tracking a runner-up inside the
    // argmin reduce above.
    double m = f[0];
    for (size_t i = 1; i < n; ++i) m = std::min(m, f[i]);
    free_min_ = m;
    return true;
  }

  /// True iff a queued task could start right now: some server is free at
  /// \p now (via the cached earliest free time) and the queue is
  /// non-empty. O(1); lets the dispatcher skip the full start attempt on
  /// saturated backends.
  bool StartableAt(double now) const { return count_ != 0 && free_min_ <= now; }

  /// Marks one task completed (bookkeeping for pending()).
  void FinishOne(double busy_seconds) {
    if (in_service_ > 0) --in_service_;
    busy_seconds_ += busy_seconds;
    ++completed_tasks_;
  }
  // qcap-lint: hot-path end

  /// Removes all queued (not yet started) tasks, appending them to \p out
  /// in FIFO order — used when the backend crashes.
  void DrainQueueInto(std::vector<BackendTask>* out);

  /// Crash: drains the queue into \p out (for re-dispatch / replica lag)
  /// and resets the servers, forgetting in-flight work. Accumulated
  /// busy-time accounting survives (work done before the crash was real).
  void Crash(std::vector<BackendTask>* out);

  /// Earliest time any server becomes free.
  double NextFreeTime() const;

  bool HasQueued() const { return count_ > 0; }
  double busy_seconds() const { return busy_seconds_; }
  uint64_t completed_tasks() const { return completed_tasks_; }

 private:
  /// Doubles the ring (capacity stays a power of two), re-linearizing the
  /// FIFO order.
  void Grow();

  // qcap-lint: hot-path begin
  /// Dequeues the head task onto server \p best starting at \p start.
  void StartOn(size_t best, double start, BackendTask* task,
               double* completion_time, double service_scale) {
    *task = ring_[head_];
    head_ = (head_ + 1) & mask_;
    --count_;
    *completion_time = start + task->service_seconds * service_scale;
    server_free_at_[best] = *completion_time;
    ++in_service_;
  }
  // qcap-lint: hot-path end

  std::vector<BackendTask> ring_;  // FIFO: [head_, head_ + count_) & mask_.
  size_t mask_ = 0;                // ring_.size() - 1 (size 0 before growth).
  size_t head_ = 0;
  size_t count_ = 0;
  /// Larger than any simulated time; seeds min scans.
  static constexpr double kNever = 1.0e300;

  void RecomputeFreeMin() {
    double m = server_free_at_[0];
    for (size_t i = 1; i < server_free_at_.size(); ++i) {
      if (server_free_at_[i] < m) m = server_free_at_[i];
    }
    free_min_ = m;
  }

  std::vector<double> server_free_at_;
  double free_min_ = 0.0;
  size_t in_service_ = 0;
  double busy_seconds_ = 0.0;
  uint64_t completed_tasks_ = 0;
};

}  // namespace qcap
