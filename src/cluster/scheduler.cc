#include "cluster/scheduler.h"

namespace qcap {

Result<Scheduler> Scheduler::Build(const Classification& cls,
                                   const Allocation& alloc) {
  Scheduler sched;
  sched.read_candidates_.resize(cls.reads.size());
  sched.update_targets_.resize(cls.updates.size());

  for (size_t r = 0; r < cls.reads.size(); ++r) {
    // Least-pending-first dispatch over every backend holding the class's
    // data (Section 2): the scheduler adapts to actual backend speeds.
    for (size_t b = 0; b < alloc.num_backends(); ++b) {
      if (alloc.HoldsAll(b, cls.reads[r].fragments)) {
        sched.read_candidates_[r].push_back(b);
      }
    }
    if (sched.read_candidates_[r].empty()) {
      return Status::InvalidArgument("read class " + cls.reads[r].label +
                                     " has no capable backend");
    }
  }
  for (size_t u = 0; u < cls.updates.size(); ++u) {
    for (size_t b = 0; b < alloc.num_backends(); ++b) {
      if (Intersects(cls.updates[u].fragments, alloc.BackendFragments(b))) {
        sched.update_targets_[u].push_back(b);
      }
    }
    if (sched.update_targets_[u].empty()) {
      return Status::InvalidArgument("update class " + cls.updates[u].label +
                                     " has no backend");
    }
  }
  sched.index_prototype_.Build(sched.read_candidates_, alloc.num_backends());
  sched.index_scratch_ = sched.index_prototype_;
  return sched;
}

size_t Scheduler::PickReadBackend(size_t r,
                                  const std::vector<size_t>& pending) {
  const auto& candidates = read_candidates_[r];
  for (size_t b : candidates) {
    index_scratch_.SetKey(b, pending[b]);
  }
  const size_t start = rotation_++ % candidates.size();
  return index_scratch_.Pick(r, start);
}

}  // namespace qcap
