// Completion calendar for the simulator's fast path. Every simulated
// server (backend connection) runs at most one task at a time, so at most
// one completion event per server is outstanding: the pending completions
// form a fixed-size set indexed by server (slot), not an unbounded queue.
//
// The calendar is two flat argmin levels, ordered by the simulator's
// (time, seq) total order packed into one 128-bit integer key:
//
//   - per backend, the min key over its contiguous block of server slots,
//     recomputed by a short branch-free scan when a slot changes;
//   - globally, the min over the per-backend minima, recomputed by one
//     branch-free scan per pop.
//
// Both scans issue their loads independently (no level-to-level store/load
// chain, unlike a tournament-tree replay) and select with conditional
// moves, which measures faster than either a d-ary heap or a winner tree
// at simulation scale (tens of servers).
//
// Rare events that do not fit the one-per-server shape — faults, retries,
// open-loop arrivals, completions displaced by a crash, and boundary-time
// double bookings — live in the pooled EventQueue instead; the simulator
// merges the two sources by (time, seq) at pop, so the global processing
// order is exactly the one a single event heap would produce.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qcap {

/// Payload of one in-service task's completion.
struct ServerEvent {
  uint64_t request_id = 0;
  uint32_t epoch = 0;    // backend epoch at task start (small: it counts
                         // the backend's crash/recover events).
  uint32_t backend = 0;  // owning backend (slot / servers_per_backend).
  double busy_seconds = 0.0;  // actual (degrade-scaled) service time.
  double base_service = 0.0;  // nominal service time.
};

/// \brief One-completion-per-server two-level argmin calendar.
///
/// Reset() keeps all container capacity, so a calendar reused across runs
/// allocates nothing after the first.
class ServerCalendar {
 public:
  /// Packed (time, seq) comparison key. Simulated times are non-negative,
  /// so the IEEE-754 bit pattern of the time orders like the double; with
  /// seq next, one 128-bit integer compare decides the full lexicographic
  /// (time, seq) order branchlessly. The low 16 bits are left open for the
  /// slot index: the calendar's per-slot keys OR it in, so an argmin scan
  /// over keys yields the winning slot in the winner's low bits with no
  /// separate index-select chain. Distinct events have distinct seq, so
  /// order between real keys is decided above bit 16 and the slot bits
  /// never influence a comparison that matters (seq must stay below 2^48 —
  /// it counts events within one run).
  using Key = unsigned __int128;
  /// Key of an idle server: above every real key (a real time's bit
  /// pattern is at most the infinity pattern, which has zeros in the
  /// mantissa, and no real event carries an all-ones seq).
  static constexpr Key kIdleKey = ~Key{0};

  static Key MakeKey(double time, uint64_t seq) {
    return (Key{std::bit_cast<uint64_t>(time)} << 64) | (seq << 16);
  }

  /// Sizes the calendar for \p num_backends blocks of \p servers_per_backend
  /// slots each (slot = backend * servers_per_backend + server), all idle.
  void Reset(size_t num_backends, size_t servers_per_backend) {
    num_backends_ = num_backends;
    spb_ = servers_per_backend;
    stale_ = kNone_;
    top_slot_ = 0;
    key_.assign(num_backends * servers_per_backend, kIdleKey);
    events_.assign(num_backends * servers_per_backend, ServerEvent{});
    backend_key_.assign(num_backends, kIdleKey);
  }

  // qcap-lint: hot-path begin
  /// Key of the earliest outstanding completion; kIdleKey if none. Also
  /// latches the winning slot for top_server() (the winner's low 16 bits
  /// are its slot index, so the scan is one compare/select per backend).
  Key top_key() {
    if (stale_ != kNone_) {
      RecomputeBackend(stale_);
      stale_ = kNone_;
    }
    const Key* bk = backend_key_.data();
    Key best = bk[0];
    for (size_t b = 1; b < num_backends_; ++b) {
      best = bk[b] < best ? bk[b] : best;
    }
    top_slot_ = static_cast<uint16_t>(static_cast<uint64_t>(best));
    return best;
  }
  /// The slot holding the earliest completion. Valid after a top_key()
  /// call that did not report idle.
  size_t top_server() const { return top_slot_; }

  bool occupied(size_t slot) const { return key_[slot] != kIdleKey; }
  const ServerEvent& event(size_t slot) const { return events_[slot]; }
  /// Completion time of an occupied slot, decoded from its key (the
  /// payload does not repeat time/seq — 32-byte events copy and index
  /// cheaper than 56-byte ones).
  double slot_time(size_t slot) const {
    return std::bit_cast<double>(static_cast<uint64_t>(key_[slot] >> 64));
  }
  /// Tie-break seq of an occupied slot, decoded from its key.
  uint64_t slot_seq(size_t slot) const {
    return static_cast<uint64_t>(key_[slot]) >> 16;
  }

  /// Schedules \p slot's completion on \p backend (the slot's owning
  /// block, passed in because every caller already has it — deriving it
  /// would put a division on the hot path). Requires !occupied(slot).
  void Schedule(size_t slot, size_t backend, double time, uint64_t seq,
                const ServerEvent& e) {
    events_[slot] = e;
    key_[slot] = MakeKey(time, seq) | slot;
    // A deferred Clear on the same backend is absorbed by this recompute;
    // one on another backend must flush first.
    if (stale_ != kNone_ && stale_ != backend) RecomputeBackend(stale_);
    stale_ = kNone_;
    RecomputeBackend(backend);
  }

  /// Marks \p slot idle (its completion was popped or displaced). The
  /// backend's min is refreshed lazily: the common pop/finish/start cycle
  /// immediately re-schedules a slot of the same backend, fusing the two
  /// recomputes into one.
  void Clear(size_t slot, size_t backend) {
    key_[slot] = kIdleKey;
    if (stale_ != kNone_ && stale_ != backend) RecomputeBackend(stale_);
    stale_ = backend;
  }
  // qcap-lint: hot-path end

 private:
  // qcap-lint: hot-path begin
  /// Branch-free min over \p backend's slot block. Real keys are unique
  /// (seq is), so ties arise only between idle slots, whose slot bits are
  /// never read. The winning key carries its slot in the low 16 bits.
  void RecomputeBackend(size_t backend) {
    const Key* k = key_.data() + backend * spb_;
    Key best = k[0];
    for (size_t i = 1; i < spb_; ++i) {
      best = k[i] < best ? k[i] : best;
    }
    backend_key_[backend] = best;
  }
  // qcap-lint: hot-path end

  static constexpr size_t kNone_ = ~size_t{0};
  size_t num_backends_ = 0;
  size_t spb_ = 1;                   // servers (slots) per backend.
  size_t stale_ = kNone_;            // backend with a deferred recompute.
  uint16_t top_slot_ = 0;            // latched by top_key().
  std::vector<Key> key_;             // per-slot packed key or kIdleKey.
  std::vector<ServerEvent> events_;  // per-slot payload.
  std::vector<Key> backend_key_;     // per-backend min key (slot in low bits).
};

}  // namespace qcap
