// Query scheduler (Section 2): least-pending-request-first dispatch of
// whole queries to backends that hold all required data, with ROWA fan-out
// of updates to every backend storing referenced data.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/pending_index.h"
#include "common/status.h"
#include "model/allocation.h"
#include "workload/query_class.h"

namespace qcap {

/// \brief Precomputed dispatch tables for one allocation.
class Scheduler {
 public:
  /// Builds eligibility from \p alloc: a read class can run on any backend
  /// holding all its fragments; an update class must run on every backend
  /// holding any of its fragments. Fails if some class has no eligible
  /// backend.
  static Result<Scheduler> Build(const Classification& cls,
                                 const Allocation& alloc);

  /// Backends capable of serving read class \p r.
  const std::vector<size_t>& ReadCandidates(size_t r) const {
    return read_candidates_[r];
  }
  /// Backends that must all execute update class \p u (ROWA).
  const std::vector<size_t>& UpdateTargets(size_t u) const {
    return update_targets_[u];
  }

  /// Least-pending-first choice among \p r's candidates given the current
  /// per-backend pending counts. Ties rotate round-robin so equal queues
  /// share the load instead of piling onto the lowest index. Backed by the
  /// same PendingIndex the simulator's dispatch uses — one implementation
  /// of the tie-break semantics, not two.
  size_t PickReadBackend(size_t r, const std::vector<size_t>& pending);

  /// Pristine O(log B) least-pending index over the read candidate lists
  /// (all keys 0). The simulator copies it into run scratch and keeps the
  /// keys in sync with backend pending counts and liveness.
  const PendingIndex& pending_index() const { return index_prototype_; }

  /// Tie-rotation state: advanced once per PickReadBackend call. A routing
  /// hot-swap (Dispatcher::SwapRouting) carries it into the replacement
  /// scheduler so decisions for classes whose candidate sets are unchanged
  /// stay bit-identical across the swap boundary.
  size_t rotation() const { return rotation_; }
  void set_rotation(size_t rotation) { rotation_ = rotation; }

 private:
  std::vector<std::vector<size_t>> read_candidates_;
  std::vector<std::vector<size_t>> update_targets_;
  /// Never mutated after Build (PickReadBackend works on a scratch copy).
  PendingIndex index_prototype_;
  PendingIndex index_scratch_;
  size_t rotation_ = 0;
};

}  // namespace qcap
