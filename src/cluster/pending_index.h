// Least-pending read-dispatch index: per-read-class tournament (segment)
// trees over backend pending counts, answering "least-pending alive
// candidate, ties broken by the first candidate at the minimum in the
// cyclic scan order starting at a rotation offset" in O(log B) — the exact
// semantics of the scheduler's linear rotated scan, without touching every
// candidate per dispatch.
//
// Classes with identical candidate lists share one tree (deduplicated into
// groups). Key updates are lazy in the extreme: SetKey is one store, and
// Pick rebuilds the queried group's small tree from the current keys
// before descending it. An update-heavy workload changes pending counts
// hundreds of times between two reads, so per-change tree maintenance is
// wasted work; a rebuild touches 2*width contiguous words once per read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qcap {

/// \brief Cyclic-argmin index over per-backend pending counts.
///
/// Copy-assignable with capacity reuse: the simulator keeps a pristine
/// prototype (built once per Scheduler) and copies it into run scratch.
class PendingIndex {
 public:
  /// Key of a crashed backend: larger than every real pending count, so a
  /// dead candidate loses every comparison and an all-dead group reports
  /// its minimum as kDeadKey.
  static constexpr uint64_t kDeadKey = ~uint64_t{0};
  /// Pick() result when every candidate of the class is dead.
  static constexpr size_t kNone = ~size_t{0};

  /// Builds the group structure from per-class candidate lists (each list
  /// non-empty, backend ids < \p num_backends). All keys start at 0.
  void Build(const std::vector<std::vector<size_t>>& candidates_per_class,
             size_t num_backends);

  /// Resets every key to 0 (alive, nothing pending) — run start.
  void ResetKeys();

  // qcap-lint: hot-path begin
  /// Sets backend \p b's key (its pending count, or kDeadKey while
  /// crashed). One store: the trees are refreshed by the next Pick that
  /// reads them.
  void SetKey(size_t b, uint64_t key) { keys_[b] = key; }
  // qcap-lint: hot-path end

  uint64_t key(size_t b) const { return keys_[b]; }

  /// Candidate count of \p class_index's group (the rotation modulus).
  size_t NumCandidates(size_t class_index) const {
    return groups_[class_group_[class_index]].count;
  }

  /// Winning backend for \p class_index with rotation offset \p start in
  /// [0, NumCandidates(class_index)): the first candidate in cyclic order
  /// start, start+1, ..., start-1 whose key attains the minimum over the
  /// class's candidates. kNone when every candidate is dead. Refreshes the
  /// class's tree from the current keys first.
  size_t Pick(size_t class_index, size_t start);

  size_t num_classes() const { return class_group_.size(); }

 private:
  struct Group {
    size_t tree_offset = 0;  // into tree_; nodes 1..2*width-1, 1-indexed.
    size_t width = 0;        // leaf row width (power of two >= count).
    size_t count = 0;        // real candidates (leaves [0, count)).
    size_t cand_offset = 0;  // into cand_.
  };

  std::vector<size_t> class_group_;  // class -> group.
  std::vector<Group> groups_;
  std::vector<size_t> cand_;      // flattened candidate backend ids.
  std::vector<uint64_t> tree_;    // all groups' trees, concatenated;
                                  // rebuilt per Pick (padding leaves stay
                                  // at kDeadKey so they never win).
  std::vector<uint64_t> keys_;    // per-backend current key.
};

}  // namespace qcap
