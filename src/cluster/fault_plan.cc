#include "cluster/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/strings.h"

namespace qcap {

namespace {

const char* KindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRecover:
      return "recover";
    case FaultEvent::Kind::kDegrade:
      return "degrade";
  }
  return "?";
}

}  // namespace

FaultPlan& FaultPlan::Crash(double time_seconds, size_t backend) {
  events.push_back({FaultEvent::Kind::kCrash, time_seconds, backend, 1.0});
  return *this;
}

FaultPlan& FaultPlan::Recover(double time_seconds, size_t backend) {
  events.push_back({FaultEvent::Kind::kRecover, time_seconds, backend, 1.0});
  return *this;
}

FaultPlan& FaultPlan::Degrade(double time_seconds, size_t backend,
                              double factor) {
  events.push_back({FaultEvent::Kind::kDegrade, time_seconds, backend, factor});
  return *this;
}

std::vector<FaultEvent> FaultPlan::Sorted() const {
  std::vector<size_t> order(events.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return events[a].time_seconds < events[b].time_seconds;
  });
  std::vector<FaultEvent> sorted;
  sorted.reserve(events.size());
  for (size_t i : order) sorted.push_back(events[i]);
  return sorted;
}

Status FaultPlan::Validate(size_t num_backends) const {
  for (const FaultEvent& ev : events) {
    if (!std::isfinite(ev.time_seconds) || ev.time_seconds < 0.0) {
      return Status::InvalidArgument(
          std::string(KindName(ev.kind)) + " event time " +
          std::to_string(ev.time_seconds) + " must be finite and >= 0");
    }
    if (ev.backend >= num_backends) {
      return Status::InvalidArgument(
          std::string(KindName(ev.kind)) + " event backend " +
          std::to_string(ev.backend) + " out of range (cluster has " +
          std::to_string(num_backends) + " backends)");
    }
    if (ev.kind == FaultEvent::Kind::kDegrade &&
        (!std::isfinite(ev.factor) || ev.factor <= 0.0)) {
      return Status::InvalidArgument("degrade factor " +
                                     std::to_string(ev.factor) +
                                     " must be finite and > 0");
    }
  }
  // Replay: events must be consistent with the backend's up/down state at
  // the moment they apply.
  std::vector<bool> down(num_backends, false);
  for (const FaultEvent& ev : Sorted()) {
    const std::string at = " at t=" + std::to_string(ev.time_seconds);
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
        if (down[ev.backend]) {
          return Status::InvalidArgument(
              "duplicate crash of dead backend " + std::to_string(ev.backend) +
              at);
        }
        down[ev.backend] = true;
        break;
      case FaultEvent::Kind::kRecover:
        if (!down[ev.backend]) {
          return Status::InvalidArgument(
              "recover of backend " + std::to_string(ev.backend) + at +
              " which is not down (recover before crash?)");
        }
        down[ev.backend] = false;
        break;
      case FaultEvent::Kind::kDegrade:
        if (down[ev.backend]) {
          return Status::InvalidArgument("degrade of crashed backend " +
                                         std::to_string(ev.backend) + at);
        }
        break;
    }
  }
  return Status::OK();
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += ',';
    out += KindName(ev.kind);
    out += ':' + FormatDouble(ev.time_seconds, 6) + ':' +
           std::to_string(ev.backend);
    if (ev.kind == FaultEvent::Kind::kDegrade) {
      out += ':' + FormatDouble(ev.factor, 6);
    }
  }
  return out;
}

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find_first_of(",;", pos);
    if (end == std::string::npos) end = spec.size();
    std::string token = Trim(spec.substr(pos, end - pos));
    pos = end + 1;
    if (token.empty()) {
      if (end == spec.size()) break;
      continue;
    }
    std::vector<std::string> parts = Split(token, ':');
    if (parts.size() < 3) {
      return Status::InvalidArgument("fault event '" + token +
                                     "' needs kind:time:backend");
    }
    FaultEvent ev;
    const std::string& kind = parts[0];
    if (kind == "crash") {
      ev.kind = FaultEvent::Kind::kCrash;
    } else if (kind == "recover") {
      ev.kind = FaultEvent::Kind::kRecover;
    } else if (kind == "degrade") {
      ev.kind = FaultEvent::Kind::kDegrade;
    } else {
      return Status::InvalidArgument("unknown fault kind '" + kind +
                                     "' (want crash|recover|degrade)");
    }
    if ((ev.kind == FaultEvent::Kind::kDegrade && parts.size() != 4) ||
        (ev.kind != FaultEvent::Kind::kDegrade && parts.size() != 3)) {
      return Status::InvalidArgument("fault event '" + token +
                                     "' has the wrong number of fields");
    }
    try {
      size_t consumed = 0;
      ev.time_seconds = std::stod(parts[1], &consumed);
      if (consumed != parts[1].size()) throw std::invalid_argument(parts[1]);
      consumed = 0;
      const long backend = std::stol(parts[2], &consumed);
      if (consumed != parts[2].size() || backend < 0) {
        throw std::invalid_argument(parts[2]);
      }
      ev.backend = static_cast<size_t>(backend);
      if (ev.kind == FaultEvent::Kind::kDegrade) {
        consumed = 0;
        ev.factor = std::stod(parts[3], &consumed);
        if (consumed != parts[3].size()) throw std::invalid_argument(parts[3]);
      }
    } catch (const std::exception&) {
      return Status::InvalidArgument("malformed number in fault event '" +
                                     token + "'");
    }
    plan.events.push_back(ev);
  }
  return plan;
}

}  // namespace qcap
