#include "cluster/migration_executor.h"

#include <algorithm>
#include <cmath>

namespace qcap {

const char* ToString(MigrationPhase phase) {
  switch (phase) {
    case MigrationPhase::kIdle:
      return "idle";
    case MigrationPhase::kCopy:
      return "copy";
    case MigrationPhase::kCatchup:
      return "catchup";
    case MigrationPhase::kDone:
      return "done";
  }
  return "unknown";
}

Status MigrationExecutor::Begin(Allocation target,
                                std::vector<BackendSpec> target_backends,
                                const TransitionPlan& plan,
                                double start_seconds,
                                const MigrationOptions& options) {
  if (active_) {
    return Status::AlreadyExists("migration already in flight");
  }
  if (target.num_backends() == 0) {
    return Status::InvalidArgument("target allocation has no backends");
  }
  if (target.num_backends() != plan.source_of.size() ||
      target.num_backends() != plan.move_bytes.size()) {
    return Status::InvalidArgument(
        "transition plan does not match the target allocation");
  }
  if (target_backends.size() != target.num_backends()) {
    return Status::InvalidArgument("backend specs do not match target");
  }
  if (!(options.etl_interference > 0.0) ||
      !std::isfinite(options.etl_interference)) {
    return Status::InvalidArgument("etl_interference must be finite and > 0");
  }
  if (options.live_copy_slowdown < 1.0 ||
      !std::isfinite(options.live_copy_slowdown)) {
    return Status::InvalidArgument("live_copy_slowdown must be >= 1");
  }
  if (options.catchup_fraction < 0.0 || options.min_catchup_seconds < 0.0) {
    return Status::InvalidArgument("catch-up parameters must be >= 0");
  }

  target_ = std::move(target);
  target_backends_ = std::move(target_backends);
  options_ = options;
  start_ = start_seconds;
  moved_bytes_ = plan.total_bytes;

  // The plan's duration is the slowest backend's ETL time on a dedicated
  // link; live copying stretches it. Per-backend copy time scales with the
  // bytes it receives relative to the slowest receiver.
  const double copy_total =
      plan.duration_seconds * options_.live_copy_slowdown;
  const double max_bytes =
      *std::max_element(plan.move_bytes.begin(), plan.move_bytes.end());
  const double catchup = std::max(options_.min_catchup_seconds,
                                  options_.catchup_fraction * copy_total);

  ready_.assign(target_.num_backends(), start_);
  for (size_t b = 0; b < target_.num_backends(); ++b) {
    if (plan.move_bytes[b] <= 0.0) continue;
    const double share =
        max_bytes > 0.0 ? plan.move_bytes[b] / max_bytes : 1.0;
    ready_[b] = start_ + share * copy_total + catchup;
  }
  copy_end_ = start_ + copy_total;
  swap_ = *std::max_element(ready_.begin(), ready_.end());
  // A no-op plan (nothing moves) still takes one catch-up window so the
  // swap never lands at the exact decision instant.
  if (swap_ <= start_) {
    copy_end_ = start_;
    swap_ = start_ + catchup;
  }

  // Serving nodes whose foreground queries feel the ETL: every physical
  // (old-cluster) node that donates bytes to a receiving destination.
  participants_.clear();
  for (size_t b = 0; b < target_.num_backends(); ++b) {
    if (plan.move_bytes[b] <= 0.0) continue;
    if (plan.source_of[b] < 0) continue;  // fresh node: not serving yet
    participants_.push_back(static_cast<size_t>(plan.source_of[b]));
  }
  std::sort(participants_.begin(), participants_.end());
  participants_.erase(
      std::unique(participants_.begin(), participants_.end()),
      participants_.end());

  active_ = true;
  return Status::OK();
}

MigrationPhase MigrationExecutor::PhaseAt(double time_seconds) const {
  if (!active_) return MigrationPhase::kIdle;
  if (time_seconds < start_) return MigrationPhase::kIdle;
  if (time_seconds < copy_end_) return MigrationPhase::kCopy;
  if (time_seconds < swap_) return MigrationPhase::kCatchup;
  return MigrationPhase::kDone;
}

std::vector<InterferenceWindow> MigrationExecutor::InterferenceIn(
    double window_begin, double window_end) const {
  std::vector<InterferenceWindow> windows;
  if (!active_ || options_.etl_interference == 1.0) return windows;
  const double begin = std::max(window_begin, start_);
  const double end = std::min(window_end, copy_end_);
  if (begin >= end) return windows;
  windows.reserve(participants_.size());
  for (size_t node : participants_) {
    windows.push_back(
        InterferenceWindow{node, begin, end, options_.etl_interference});
  }
  return windows;
}

Allocation MigrationExecutor::TakeTarget() {
  active_ = false;
  return std::move(target_);
}

void MigrationExecutor::Abort() {
  active_ = false;
  target_ = Allocation();
  target_backends_.clear();
  ready_.clear();
  participants_.clear();
}

}  // namespace qcap
