// Simulation statistics: throughput, latency, availability, and
// per-backend utilization of one simulated run. The shared measurement
// primitives (SearchProgress, ResponseAccumulator) live in common/stats.h
// so lower layers can use them without depending on the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qcap {

/// Results of one simulated run.
struct SimStats {
  /// Simulated wall-clock seconds.
  double duration_seconds = 0.0;
  /// Completed logical requests (an update counts once even though it runs
  /// on every replica).
  uint64_t completed_reads = 0;
  uint64_t completed_updates = 0;
  /// Requests abandoned after exhausting the retry budget (with retries
  /// disabled: any request whose work a crash destroyed).
  uint64_t failed_requests = 0;
  /// Requests that could not be dispatched because no surviving backend
  /// holds the class's data (the situation k-safety prevents).
  uint64_t rejected_requests = 0;
  /// Retry attempts scheduled for requests stranded by a crash (each adds
  /// the policy's backoff delay to the request's response time).
  uint64_t retried_requests = 0;
  /// Retries that successfully landed the request on a surviving backend.
  uint64_t redispatched_requests = 0;
  /// Missed update applications (replica lag) drained by recoveries.
  uint64_t lag_tasks_drained = 0;
  /// Logical requests per second.
  double throughput = 0.0;
  /// Mean and maximum response time (queueing + service) in seconds.
  double avg_response_seconds = 0.0;
  double max_response_seconds = 0.0;
  /// Response-time percentiles (nearest-rank) in seconds.
  double p50_response_seconds = 0.0;
  double p95_response_seconds = 0.0;
  double p99_response_seconds = 0.0;
  /// Fraction of the offered load that was served:
  /// completed / (completed + failed + rejected); 1 when nothing was offered.
  double availability = 1.0;
  /// Filled by the self-healing controller: seconds from a crash to its
  /// repaired replacement rejoining (max over repairs; 0 = no repair ran).
  double recovery_seconds = 0.0;
  /// Per-backend total busy (processing) seconds.
  std::vector<double> backend_busy_seconds;
  /// Completions per timeline bin when SimulationConfig::timeline_bin_seconds
  /// is > 0 (bin i covers [i*bin, (i+1)*bin) simulated seconds).
  double timeline_bin_seconds = 0.0;
  std::vector<uint64_t> timeline_completions;
  /// Completed logical requests per class (reads first, then updates) when
  /// SimulationConfig::track_class_mix is set — the observed workload mix
  /// the adaptive control loop's drift detector feeds on. Empty otherwise.
  std::vector<uint64_t> class_completions;

  uint64_t completed_total() const { return completed_reads + completed_updates; }

  /// Relative deviation from the average per-backend processing time
  /// normalized by relative performance (the balance measure of Fig. 4j).
  /// \p relative_loads are the backends' performance shares.
  double BusyBalanceDeviation(const std::vector<double>& relative_loads) const;

  /// One-line human-readable summary.
  std::string ToString() const;
};

}  // namespace qcap
