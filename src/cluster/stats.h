// Simulation and search statistics: throughput, latency, per-backend
// utilization, and live progress counters for long-running allocation
// searches.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace qcap {

/// Results of one simulated run.
struct SimStats {
  /// Simulated wall-clock seconds.
  double duration_seconds = 0.0;
  /// Completed logical requests (an update counts once even though it runs
  /// on every replica).
  uint64_t completed_reads = 0;
  uint64_t completed_updates = 0;
  /// Requests lost to an injected backend failure mid-execution.
  uint64_t failed_requests = 0;
  /// Requests that could not be dispatched because no surviving backend
  /// holds the class's data (the situation k-safety prevents).
  uint64_t rejected_requests = 0;
  /// Logical requests per second.
  double throughput = 0.0;
  /// Mean and maximum response time (queueing + service) in seconds.
  double avg_response_seconds = 0.0;
  double max_response_seconds = 0.0;
  /// Per-backend total busy (processing) seconds.
  std::vector<double> backend_busy_seconds;

  uint64_t completed_total() const { return completed_reads + completed_updates; }

  /// Relative deviation from the average per-backend processing time
  /// normalized by relative performance (the balance measure of Fig. 4j).
  /// \p relative_loads are the backends' performance shares.
  double BusyBalanceDeviation(const std::vector<double>& relative_loads) const;

  /// One-line human-readable summary.
  std::string ToString() const;
};

/// \brief Thread-safe progress counters for a running allocation search.
///
/// The island-model memetic allocator (alloc/memetic.h) updates these from
/// its worker threads (relaxed atomics — counters, not synchronization);
/// an operator thread may read a consistent-enough snapshot at any time,
/// e.g. to drive a progress display while a large search runs.
struct SearchProgress {
  /// Generations completed, summed over all islands.
  std::atomic<uint64_t> generations{0};
  /// Cost-function evaluations (the search's unit of work).
  std::atomic<uint64_t> evaluations{0};
  /// Accepted local-search improvement moves (Eq. 21-26 hits).
  std::atomic<uint64_t> improvements{0};
  /// Inter-island best-solution migrations applied.
  std::atomic<uint64_t> migrations{0};
  /// Best scale factor seen so far (bit pattern of a double; starts at
  /// +infinity). Use best_scale()/RecordScale() instead of touching it.
  std::atomic<uint64_t> best_scale_bits;

  SearchProgress();

  /// Lowers the recorded best scale to \p scale if it improves on it.
  void RecordScale(double scale);
  /// Best scale recorded so far (+infinity until the first RecordScale).
  double best_scale() const;

  /// Resets every counter to its initial state.
  void Reset();

  /// One-line human-readable snapshot.
  std::string ToString() const;
};

/// Online mean/max accumulator for response times.
class ResponseAccumulator {
 public:
  void Add(double seconds) {
    sum_ += seconds;
    ++count_;
    if (seconds > max_) max_ = seconds;
  }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double max() const { return max_; }
  uint64_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  double max_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace qcap
