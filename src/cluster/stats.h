// Simulation and search statistics: throughput, latency, per-backend
// utilization, and live progress counters for long-running allocation
// searches.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace qcap {

/// Results of one simulated run.
struct SimStats {
  /// Simulated wall-clock seconds.
  double duration_seconds = 0.0;
  /// Completed logical requests (an update counts once even though it runs
  /// on every replica).
  uint64_t completed_reads = 0;
  uint64_t completed_updates = 0;
  /// Requests abandoned after exhausting the retry budget (with retries
  /// disabled: any request whose work a crash destroyed).
  uint64_t failed_requests = 0;
  /// Requests that could not be dispatched because no surviving backend
  /// holds the class's data (the situation k-safety prevents).
  uint64_t rejected_requests = 0;
  /// Retry attempts scheduled for requests stranded by a crash (each adds
  /// the policy's backoff delay to the request's response time).
  uint64_t retried_requests = 0;
  /// Retries that successfully landed the request on a surviving backend.
  uint64_t redispatched_requests = 0;
  /// Missed update applications (replica lag) drained by recoveries.
  uint64_t lag_tasks_drained = 0;
  /// Logical requests per second.
  double throughput = 0.0;
  /// Mean and maximum response time (queueing + service) in seconds.
  double avg_response_seconds = 0.0;
  double max_response_seconds = 0.0;
  /// Response-time percentiles (nearest-rank) in seconds.
  double p50_response_seconds = 0.0;
  double p95_response_seconds = 0.0;
  double p99_response_seconds = 0.0;
  /// Fraction of the offered load that was served:
  /// completed / (completed + failed + rejected); 1 when nothing was offered.
  double availability = 1.0;
  /// Filled by the self-healing controller: seconds from a crash to its
  /// repaired replacement rejoining (max over repairs; 0 = no repair ran).
  double recovery_seconds = 0.0;
  /// Per-backend total busy (processing) seconds.
  std::vector<double> backend_busy_seconds;
  /// Completions per timeline bin when SimulationConfig::timeline_bin_seconds
  /// is > 0 (bin i covers [i*bin, (i+1)*bin) simulated seconds).
  double timeline_bin_seconds = 0.0;
  std::vector<uint64_t> timeline_completions;
  /// Completed logical requests per class (reads first, then updates) when
  /// SimulationConfig::track_class_mix is set — the observed workload mix
  /// the adaptive control loop's drift detector feeds on. Empty otherwise.
  std::vector<uint64_t> class_completions;

  uint64_t completed_total() const { return completed_reads + completed_updates; }

  /// Relative deviation from the average per-backend processing time
  /// normalized by relative performance (the balance measure of Fig. 4j).
  /// \p relative_loads are the backends' performance shares.
  double BusyBalanceDeviation(const std::vector<double>& relative_loads) const;

  /// One-line human-readable summary.
  std::string ToString() const;
};

/// \brief Thread-safe progress counters for a running allocation search.
///
/// The island-model memetic allocator (alloc/memetic.h) updates these from
/// its worker threads (relaxed atomics — counters, not synchronization);
/// an operator thread may read a consistent-enough snapshot at any time,
/// e.g. to drive a progress display while a large search runs.
struct SearchProgress {
  /// Generations completed, summed over all islands.
  std::atomic<uint64_t> generations{0};
  /// Cost-function evaluations (the search's unit of work).
  std::atomic<uint64_t> evaluations{0};
  /// Accepted local-search improvement moves (Eq. 21-26 hits).
  std::atomic<uint64_t> improvements{0};
  /// Inter-island best-solution migrations applied.
  std::atomic<uint64_t> migrations{0};
  /// Best scale factor seen so far (bit pattern of a double; starts at
  /// +infinity). Use best_scale()/RecordScale() instead of touching it.
  std::atomic<uint64_t> best_scale_bits;

  SearchProgress();

  /// Lowers the recorded best scale to \p scale if it improves on it.
  void RecordScale(double scale);
  /// Best scale recorded so far (+infinity until the first RecordScale).
  double best_scale() const;

  /// Resets every counter to its initial state.
  void Reset();

  /// One-line human-readable snapshot.
  std::string ToString() const;
};

/// Mean/max/percentile accumulator for response times. Samples are kept so
/// percentiles are exact (nearest-rank), not approximated.
class ResponseAccumulator {
 public:
  void Add(double seconds) {
    sum_ += seconds;
    if (seconds > max_) max_ = seconds;
    samples_.push_back(seconds);
  }
  double mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }
  double max() const { return max_; }
  uint64_t count() const { return samples_.size(); }

  /// Drops all samples, keeping their capacity (scratch reuse across runs).
  void Reset() {
    sum_ = 0.0;
    max_ = 0.0;
    samples_.clear();
  }
  /// Pre-grows sample storage for \p n Add() calls.
  void Reserve(size_t n) { samples_.reserve(n); }

  /// Nearest-rank percentile for \p p in (0, 1]. Total on degenerate
  /// input: 0 when no samples (never NaN — the serving metrics endpoint
  /// reads this on an idle server), out-of-range \p p clamps to [0, 1],
  /// and a NaN \p p selects the maximum sample.
  double Percentile(double p) const;

  /// p50/p95/p99 in one call: copies the samples into \p *scratch (reused,
  /// capacity kept) and runs three progressive nth_element selections, each
  /// restricted to the tail the previous one partitioned — same values as
  /// three Percentile() calls at a fraction of the selection work and no
  /// per-call allocation once \p scratch is warm.
  void Percentiles(std::vector<double>* scratch, double* p50, double* p95,
                   double* p99) const;

 private:
  double sum_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
};

}  // namespace qcap
