#include "cluster/controller.h"

#include <algorithm>
#include <queue>

#include "model/metrics.h"
#include "model/validation.h"
#include "workload/sql_parser.h"

namespace qcap {

namespace {

/// The current allocation restricted to the surviving backends: dead
/// backends keep their slot but lose their placements, so the Hungarian
/// matching sees an empty node to map the replacement onto.
Allocation SurvivorPlacements(const Allocation& alloc,
                              const std::vector<bool>& alive) {
  Allocation degraded(alloc.num_backends(), alloc.num_fragments(),
                      alloc.num_reads(), alloc.num_updates());
  for (size_t b = 0; b < alloc.num_backends(); ++b) {
    if (alive[b]) degraded.PlaceSet(b, alloc.BackendFragments(b));
  }
  return degraded;
}

}  // namespace

Status Controller::RecordSql(const std::string& sql, double cost_seconds,
                             uint64_t count) {
  SqlParser parser(catalog_);
  QCAP_ASSIGN_OR_RETURN(Query query, parser.Parse(sql, cost_seconds));
  history_.Record(query, count);
  return Status::OK();
}

Result<AllocationReport> Controller::Reallocate(
    Allocator* allocator, const std::vector<BackendSpec>& backends,
    const ClassifierOptions& options) {
  if (allocator == nullptr) {
    return Status::InvalidArgument("allocator must not be null");
  }
  Classifier classifier(catalog_, options);
  QCAP_ASSIGN_OR_RETURN(Classification cls, classifier.Classify(history_));
  QCAP_ASSIGN_OR_RETURN(Allocation alloc, allocator->Allocate(cls, backends));
  QCAP_RETURN_NOT_OK(ValidateAllocation(cls, alloc, backends));

  AllocationReport report;
  report.model_scale = Scale(alloc, backends);
  report.model_speedup = Speedup(alloc, backends);
  report.degree_of_replication = DegreeOfReplication(alloc, cls.catalog);

  const bool needs_fragmentation = options.granularity != Granularity::kNone;
  if (current_.has_value() &&
      current_->allocation.num_fragments() == cls.catalog.size()) {
    QCAP_ASSIGN_OR_RETURN(
        report.transition,
        physical_.Plan(current_->allocation, alloc, cls.catalog,
                       needs_fragmentation));
  } else {
    QCAP_ASSIGN_OR_RETURN(
        report.transition,
        physical_.InitialLoad(alloc, cls.catalog, needs_fragmentation));
  }

  report.needs_fragmentation = needs_fragmentation;
  report.classification = std::move(cls);
  report.allocation = std::move(alloc);
  current_ = std::move(report);
  backends_ = backends;
  return *current_;
}

Result<SimStats> Controller::ProcessClosed(uint64_t num_requests,
                                           size_t concurrency,
                                           const SimulationConfig& config) const {
  if (!current_.has_value()) {
    return Status::InvalidArgument("no allocation installed; call Reallocate");
  }
  QCAP_ASSIGN_OR_RETURN(
      ClusterSimulator sim,
      ClusterSimulator::Create(current_->classification, current_->allocation,
                               backends_, config));
  return sim.RunClosed(num_requests, concurrency);
}

Result<SimStats> Controller::ProcessOpen(double duration_seconds,
                                         double arrival_rate,
                                         const SimulationConfig& config) const {
  if (!current_.has_value()) {
    return Status::InvalidArgument("no allocation installed; call Reallocate");
  }
  QCAP_ASSIGN_OR_RETURN(
      ClusterSimulator sim,
      ClusterSimulator::Create(current_->classification, current_->allocation,
                               backends_, config));
  return sim.RunOpen(duration_seconds, arrival_rate);
}

Result<std::vector<SimStats>> Controller::ProcessOpenSweep(
    double duration_seconds, double arrival_rate,
    const SimulationConfig& config, const SweepOptions& sweep) const {
  if (!current_.has_value()) {
    return Status::InvalidArgument("no allocation installed; call Reallocate");
  }
  QCAP_ASSIGN_OR_RETURN(
      ClusterSimulator sim,
      ClusterSimulator::Create(current_->classification, current_->allocation,
                               backends_, config));
  return sim.RunOpenSweep(duration_seconds, arrival_rate, sweep);
}

Result<SelfHealingReport> Controller::ProcessOpenSelfHealing(
    double duration_seconds, double arrival_rate,
    const SimulationConfig& config, const SelfHealingOptions& options) const {
  if (!current_.has_value()) {
    return Status::InvalidArgument("no allocation installed; call Reallocate");
  }
  if (options.allocator == nullptr) {
    return Status::InvalidArgument("self-healing requires a repair allocator");
  }
  if (options.detection_seconds < 0.0) {
    return Status::InvalidArgument("detection_seconds must be >= 0");
  }
  const Classification& cls = current_->classification;
  const Allocation& alloc = current_->allocation;
  const size_t n = backends_.size();

  FaultPlan user = config.fault_plan;
  for (const BackendFailure& f : config.failures) {
    user.Crash(f.time_seconds, f.backend);
  }
  QCAP_RETURN_NOT_OK(user.Validate(n));

  // Replay the fault schedule through the failure-detection loop, injecting
  // a recover event for every autonomic repair. The replay mirrors the
  // simulator's alive-tracking, so the emitted plan stays consistent (no
  // recover of a live node, no crash of a dead one) and passes strict
  // validation again inside the simulator.
  struct Pending {
    double time;
    uint64_t seq;
    FaultEvent event;
    bool operator>(const Pending& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> q;
  uint64_t seq = 0;
  for (const FaultEvent& ev : user.Sorted()) {
    q.push(Pending{ev.time_seconds, seq++, ev});
  }

  SelfHealingReport report;
  FaultPlan effective;
  std::vector<bool> alive(n, true);
  while (!q.empty()) {
    const Pending p = q.top();
    q.pop();
    const FaultEvent& ev = p.event;
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash: {
        if (!alive[ev.backend]) break;  // crashed while awaiting repair
        alive[ev.backend] = false;
        effective.Crash(ev.time_seconds, ev.backend);
        Status safe = CheckKSafety(cls, alloc, alive, options.k_safety);
        if (safe.ok()) break;
        // Algorithm 3 flagged the surviving allocation: re-allocate with a
        // virtual replacement backend in the failed slot and plan the ETL
        // onto the survivors.
        RepairAction action;
        action.backend = ev.backend;
        action.crash_seconds = ev.time_seconds;
        action.violation = safe.message();
        QCAP_ASSIGN_OR_RETURN(Allocation repaired,
                              options.allocator->Allocate(cls, backends_));
        QCAP_RETURN_NOT_OK(ValidateAllocation(cls, repaired, backends_));
        QCAP_ASSIGN_OR_RETURN(
            action.plan,
            physical_.Plan(SurvivorPlacements(alloc, alive), repaired,
                           cls.catalog, current_->needs_fragmentation));
        action.recover_seconds = ev.time_seconds + options.detection_seconds +
                                 action.plan.duration_seconds;
        q.push(Pending{action.recover_seconds, seq++,
                       FaultEvent{FaultEvent::Kind::kRecover,
                                  action.recover_seconds, ev.backend, 1.0}});
        report.repairs.push_back(std::move(action));
        break;
      }
      case FaultEvent::Kind::kRecover:
        if (alive[ev.backend]) break;  // superseded by an earlier repair
        alive[ev.backend] = true;
        effective.Recover(ev.time_seconds, ev.backend);
        break;
      case FaultEvent::Kind::kDegrade:
        if (!alive[ev.backend]) break;
        effective.Degrade(ev.time_seconds, ev.backend, ev.factor);
        break;
    }
  }

  SimulationConfig run = config;
  run.failures.clear();
  run.fault_plan = std::move(effective);
  QCAP_ASSIGN_OR_RETURN(ClusterSimulator sim,
                        ClusterSimulator::Create(cls, alloc, backends_, run));
  QCAP_ASSIGN_OR_RETURN(report.stats,
                        sim.RunOpen(duration_seconds, arrival_rate));
  double recovery = 0.0;
  for (const RepairAction& r : report.repairs) {
    recovery = std::max(recovery, r.recover_seconds - r.crash_seconds);
  }
  report.stats.recovery_seconds = recovery;
  return report;
}

}  // namespace qcap
