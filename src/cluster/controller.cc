#include "cluster/controller.h"

#include "model/metrics.h"
#include "model/validation.h"
#include "workload/sql_parser.h"

namespace qcap {

Status Controller::RecordSql(const std::string& sql, double cost_seconds,
                             uint64_t count) {
  SqlParser parser(catalog_);
  QCAP_ASSIGN_OR_RETURN(Query query, parser.Parse(sql, cost_seconds));
  history_.Record(query, count);
  return Status::OK();
}

Result<AllocationReport> Controller::Reallocate(
    Allocator* allocator, const std::vector<BackendSpec>& backends,
    const ClassifierOptions& options) {
  if (allocator == nullptr) {
    return Status::InvalidArgument("allocator must not be null");
  }
  Classifier classifier(catalog_, options);
  QCAP_ASSIGN_OR_RETURN(Classification cls, classifier.Classify(history_));
  QCAP_ASSIGN_OR_RETURN(Allocation alloc, allocator->Allocate(cls, backends));
  QCAP_RETURN_NOT_OK(ValidateAllocation(cls, alloc, backends));

  AllocationReport report;
  report.model_scale = Scale(alloc, backends);
  report.model_speedup = Speedup(alloc, backends);
  report.degree_of_replication = DegreeOfReplication(alloc, cls.catalog);

  const bool needs_fragmentation = options.granularity != Granularity::kNone;
  if (current_.has_value() &&
      current_->allocation.num_fragments() == cls.catalog.size()) {
    QCAP_ASSIGN_OR_RETURN(
        report.transition,
        physical_.Plan(current_->allocation, alloc, cls.catalog,
                       needs_fragmentation));
  } else {
    QCAP_ASSIGN_OR_RETURN(
        report.transition,
        physical_.InitialLoad(alloc, cls.catalog, needs_fragmentation));
  }

  report.classification = std::move(cls);
  report.allocation = std::move(alloc);
  current_ = std::move(report);
  backends_ = backends;
  return *current_;
}

Result<SimStats> Controller::ProcessClosed(uint64_t num_requests,
                                           size_t concurrency,
                                           const SimulationConfig& config) const {
  if (!current_.has_value()) {
    return Status::InvalidArgument("no allocation installed; call Reallocate");
  }
  QCAP_ASSIGN_OR_RETURN(
      ClusterSimulator sim,
      ClusterSimulator::Create(current_->classification, current_->allocation,
                               backends_, config));
  return sim.RunClosed(num_requests, concurrency);
}

Result<SimStats> Controller::ProcessOpen(double duration_seconds,
                                         double arrival_rate,
                                         const SimulationConfig& config) const {
  if (!current_.has_value()) {
    return Status::InvalidArgument("no allocation installed; call Reallocate");
  }
  QCAP_ASSIGN_OR_RETURN(
      ClusterSimulator sim,
      ClusterSimulator::Create(current_->classification, current_->allocation,
                               backends_, config));
  return sim.RunOpen(duration_seconds, arrival_rate);
}

}  // namespace qcap
