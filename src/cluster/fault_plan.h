// Deterministic failure/recovery schedules for the cluster simulator.
//
// Generalizes the original one-shot BackendFailure crash into a timed plan
// of crash, recover, and degrade (straggler) events, usable in both open-
// and closed-loop runs. Plans are validated strictly before a run starts,
// and their effect on a simulation is bit-deterministic for a fixed seed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace qcap {

/// One scheduled fault event.
struct FaultEvent {
  enum class Kind {
    /// The backend stops: queued work is re-dispatched (or becomes replica
    /// lag for updates), in-flight work times out, the scheduler routes
    /// around the node.
    kCrash,
    /// The backend (or its repaired replacement) rejoins with its fragment
    /// set intact and first drains the replica lag accumulated while down.
    kRecover,
    /// Straggler: the backend keeps serving, but every task *started* from
    /// this moment on takes `factor` times its nominal service time.
    /// factor = 1 restores full speed.
    kDegrade,
  };

  Kind kind = Kind::kCrash;
  double time_seconds = 0.0;
  size_t backend = 0;
  /// kDegrade only: service-time multiplier (> 0; usually >= 1).
  double factor = 1.0;
};

/// \brief A deterministic schedule of crash / recover / degrade events.
///
/// Events at equal times apply in insertion order. A plan must be
/// *consistent*: a backend can only crash while up, recover while down,
/// and degrade while up (see Validate()).
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Fluent builders, e.g. plan.Crash(10, 0).Recover(25, 0).
  FaultPlan& Crash(double time_seconds, size_t backend);
  FaultPlan& Recover(double time_seconds, size_t backend);
  FaultPlan& Degrade(double time_seconds, size_t backend, double factor);

  /// Events ordered by (time, insertion order) — the processing order.
  std::vector<FaultEvent> Sorted() const;

  /// Strict validation against a cluster of \p num_backends nodes:
  ///  - every time must be finite and >= 0;
  ///  - every backend index must be < num_backends;
  ///  - every degrade factor must be finite and > 0;
  ///  - replayed in order: no crash of an already-dead backend, no recover
  ///    of a backend that is not down (including recover-before-crash),
  ///    no degrade of a dead backend.
  Status Validate(size_t num_backends) const;

  /// Round-trippable spec string, e.g. "crash:10:0,recover:25:0".
  std::string ToString() const;
};

/// Parses a plan spec of ','- or ';'-separated events:
///   crash:<time>:<backend>
///   recover:<time>:<backend>
///   degrade:<time>:<backend>:<factor>
/// e.g. "degrade:5:2:3,crash:10:0,recover:25:0". Whitespace around events
/// is ignored; backend indices are 0-based. Parsing does not apply the
/// cluster-size checks — call Validate() once the cluster size is known.
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

}  // namespace qcap
