// Controller facade mirroring the prototype architecture (Figure 3): a
// middleware that records a query history, switches to allocation mode to
// (re)compute and materialize a data layout, and switches to query
// processing mode to drive the simulated backends.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "alloc/allocator.h"
#include "cluster/simulator.h"
#include "engine/catalog.h"
#include "physical/physical_allocator.h"
#include "workload/classifier.h"
#include "workload/journal.h"

namespace qcap {

/// Result of one allocation-mode pass.
struct AllocationReport {
  Classification classification;
  Allocation allocation;
  /// Scale/speedup predicted by the analytical model.
  double model_scale = 1.0;
  double model_speedup = 1.0;
  double degree_of_replication = 1.0;
  /// ETL plan for materializing the new allocation.
  TransitionPlan transition;
};

/// \brief Single-controller CDBS: query history + allocation + processing.
class Controller {
 public:
  /// \p catalog describes the schema; the controller starts with no
  /// backends and no allocation.
  explicit Controller(const engine::Catalog& catalog,
                      EtlCostModel etl = EtlCostModel{})
      : catalog_(catalog), physical_(etl) {}

  /// Records one executed query in the history (driver feedback loop).
  void RecordQuery(const Query& query, uint64_t count = 1) {
    history_.Record(query, count);
  }

  /// Parses \p sql against the schema catalog and records it with the
  /// measured per-execution \p cost_seconds.
  Status RecordSql(const std::string& sql, double cost_seconds,
                   uint64_t count = 1);
  /// Replaces the whole history (e.g. with a synthesized journal).
  void SetHistory(QueryJournal journal) { history_ = std::move(journal); }
  const QueryJournal& history() const { return history_; }

  /// Allocation mode: classifies the history at \p options' granularity,
  /// runs \p allocator for \p backends, validates the result, and plans the
  /// migration from the current allocation (or an initial load).
  Result<AllocationReport> Reallocate(Allocator* allocator,
                                      const std::vector<BackendSpec>& backends,
                                      const ClassifierOptions& options);

  /// Query processing mode, closed loop: saturating throughput test.
  Result<SimStats> ProcessClosed(uint64_t num_requests, size_t concurrency,
                                 const SimulationConfig& config) const;

  /// Query processing mode, open loop: response times at an arrival rate.
  Result<SimStats> ProcessOpen(double duration_seconds, double arrival_rate,
                               const SimulationConfig& config) const;

  /// True once Reallocate() succeeded at least once.
  bool has_allocation() const { return current_.has_value(); }
  const AllocationReport& current() const { return *current_; }
  const std::vector<BackendSpec>& backends() const { return backends_; }

 private:
  const engine::Catalog& catalog_;
  PhysicalAllocator physical_;
  QueryJournal history_;
  std::vector<BackendSpec> backends_;
  std::optional<AllocationReport> current_;
};

}  // namespace qcap
