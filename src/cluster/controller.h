// Controller facade mirroring the prototype architecture (Figure 3): a
// middleware that records a query history, switches to allocation mode to
// (re)compute and materialize a data layout, and switches to query
// processing mode to drive the simulated backends.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "alloc/allocator.h"
#include "cluster/simulator.h"
#include "engine/catalog.h"
#include "physical/physical_allocator.h"
#include "workload/classifier.h"
#include "workload/journal.h"

namespace qcap {

/// Result of one allocation-mode pass.
struct AllocationReport {
  Classification classification;
  Allocation allocation;
  /// Scale/speedup predicted by the analytical model.
  double model_scale = 1.0;
  double model_speedup = 1.0;
  double degree_of_replication = 1.0;
  /// ETL plan for materializing the new allocation.
  TransitionPlan transition;
  /// Whether the layout uses fragmentation (granularity != kNone); repair
  /// transition plans reuse this flag.
  bool needs_fragmentation = true;
};

/// Options for the self-healing processing loop.
struct SelfHealingOptions {
  /// Re-allocates after a k-safety violation (required, not owned).
  Allocator* allocator = nullptr;
  /// Redundancy target the controller re-checks after every detected crash
  /// (Algorithm 3). 0 means "repair only once some class or fragment has
  /// no surviving replica".
  int k_safety = 0;
  /// Failure-detection delay: seconds between a crash and the repair
  /// starting to materialize.
  double detection_seconds = 0.5;
};

/// One autonomic repair triggered by a k-safety violation.
struct RepairAction {
  /// The failed backend whose slot the virtual replacement fills.
  size_t backend = 0;
  double crash_seconds = 0.0;
  /// Absolute simulation time the repaired replacement rejoins.
  double recover_seconds = 0.0;
  /// The Algorithm-3 violation that triggered the repair.
  std::string violation;
  /// Hungarian-matched ETL plan materializing the re-allocation onto the
  /// surviving nodes plus the replacement.
  TransitionPlan plan;
};

/// Outcome of a self-healing open-loop run.
struct SelfHealingReport {
  /// Simulation results; stats.recovery_seconds holds the longest
  /// crash-to-rejoin interval over all repairs.
  SimStats stats;
  std::vector<RepairAction> repairs;
};

/// \brief Single-controller CDBS: query history + allocation + processing.
class Controller {
 public:
  /// \p catalog describes the schema; the controller starts with no
  /// backends and no allocation.
  explicit Controller(const engine::Catalog& catalog,
                      EtlCostModel etl = EtlCostModel{})
      : catalog_(catalog), physical_(etl) {}

  /// Records one executed query in the history (driver feedback loop).
  void RecordQuery(const Query& query, uint64_t count = 1) {
    history_.Record(query, count);
  }

  /// Parses \p sql against the schema catalog and records it with the
  /// measured per-execution \p cost_seconds.
  Status RecordSql(const std::string& sql, double cost_seconds,
                   uint64_t count = 1);
  /// Replaces the whole history (e.g. with a synthesized journal).
  void SetHistory(QueryJournal journal) { history_ = std::move(journal); }
  const QueryJournal& history() const { return history_; }

  /// Allocation mode: classifies the history at \p options' granularity,
  /// runs \p allocator for \p backends, validates the result, and plans the
  /// migration from the current allocation (or an initial load).
  Result<AllocationReport> Reallocate(Allocator* allocator,
                                      const std::vector<BackendSpec>& backends,
                                      const ClassifierOptions& options);

  /// Query processing mode, closed loop: saturating throughput test.
  Result<SimStats> ProcessClosed(uint64_t num_requests, size_t concurrency,
                                 const SimulationConfig& config) const;

  /// Query processing mode, open loop: response times at an arrival rate.
  Result<SimStats> ProcessOpen(double duration_seconds, double arrival_rate,
                               const SimulationConfig& config) const;

  /// Replication sweep of open-loop runs over the installed allocation:
  /// \p sweep.repeat independent replications fanned out on a thread pool,
  /// results[i] bit-identical to a serial run at seed
  /// config.seed + i * sweep.seed_stride regardless of thread count.
  Result<std::vector<SimStats>> ProcessOpenSweep(
      double duration_seconds, double arrival_rate,
      const SimulationConfig& config, const SweepOptions& sweep) const;

  /// Self-healing open-loop run: replays \p config's fault plan through the
  /// failure-detection loop. After every crash the controller re-checks
  /// k-safety of the surviving allocation (Algorithm 3); on a violation it
  /// triggers an autonomic repair — re-allocating with a virtual
  /// replacement backend in the failed slot and materializing via the
  /// Hungarian transition planner — and the repaired node rejoins the
  /// simulation after detection + ETL time, draining its replica lag
  /// first. The simulator models the replacement as rejoining with the
  /// displaced replica set (the least-movement matching maps it onto the
  /// failed slot; with an unchanged workload the repair allocation
  /// reproduces an equivalent layout) while the repair's duration and ETL
  /// plan come from the real re-allocation. Deterministic for a fixed
  /// config seed.
  Result<SelfHealingReport> ProcessOpenSelfHealing(
      double duration_seconds, double arrival_rate,
      const SimulationConfig& config, const SelfHealingOptions& options) const;

  /// True once Reallocate() succeeded at least once.
  bool has_allocation() const { return current_.has_value(); }
  const AllocationReport& current() const { return *current_; }
  const std::vector<BackendSpec>& backends() const { return backends_; }

 private:
  const engine::Catalog& catalog_;
  PhysicalAllocator physical_;
  QueryJournal history_;
  std::vector<BackendSpec> backends_;
  std::optional<AllocationReport> current_;
};

}  // namespace qcap
