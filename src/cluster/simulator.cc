#include "cluster/simulator.h"

#include <algorithm>

#include "cluster/backend_node.h"
#include "common/stats.h"
#include "cluster/event_queue.h"
#include "cluster/pending_index.h"
#include <bit>

#include "cluster/server_calendar.h"
#include "common/thread_pool.h"

namespace qcap {

namespace {

/// Sentinel request id for asynchronous secondary update application
/// (primary-copy / lazy propagation) and replica-lag drain work: consumes
/// backend capacity but never completes a logical request. Request slots
/// are pool indexes, so the sentinel can never collide with a real id.
constexpr uint64_t kBackgroundRequest = ~uint64_t{0};

struct Request {
  size_t class_index = 0;  // reads first, then updates.
  size_t remaining_replicas = 0;
  size_t completed_replicas = 0;
  size_t attempts = 0;  // dispatch attempts used (retry budget).
  double submit_time = 0.0;
  /// Backoff delay of the most recently scheduled retry; the next retry
  /// multiplies it once instead of re-deriving base * multiplier^k.
  double backoff_seconds = 0.0;
  bool is_update = false;
};

}  // namespace

struct ClusterSimulator::RunState {
  std::vector<BackendNode> nodes;
  std::vector<uint8_t> alive;
  /// Bumped on every crash; completion events carry the epoch their task
  /// started under, so stale events (work destroyed by the crash) are
  /// recognizable even after the backend recovers.
  std::vector<uint64_t> epoch;
  /// Service-time multiplier per backend (straggler mode; 1 = healthy).
  std::vector<double> degrade;
  /// Missed update applications per backend, drained FIFO on recovery.
  std::vector<std::vector<BackendTask>> lag;
  std::vector<FaultEvent> faults;  // sorted by (time, insertion order).
  /// Completion calendar: one slot per server (backend * servers_per_backend
  /// + server). Holds the common case — the single outstanding completion of
  /// an in-service task.
  ServerCalendar calendar;
  /// Aux calendar for everything else: faults, retries, open-loop arrivals,
  /// crash-displaced completions, and boundary-time double bookings. Merged
  /// against \ref calendar by (time, seq) in the drain loop.
  EventQueue events;
  /// Pooled request slots: terminal requests return their slot to the free
  /// list, so storage is O(in-flight), not O(total requests issued).
  std::vector<Request> requests;
  std::vector<uint64_t> free_requests;
  /// Per-read-class least-pending index, kept in sync with node pending
  /// counts and liveness (kDeadKey while crashed).
  PendingIndex pending;
  ResponseAccumulator responses;
  std::vector<BackendTask> crash_scratch;
  std::vector<double> percentile_scratch;
  uint64_t completed_reads = 0;
  uint64_t completed_updates = 0;
  uint64_t failed_requests = 0;
  uint64_t rejected_requests = 0;
  uint64_t retried_requests = 0;
  uint64_t redispatched_requests = 0;
  uint64_t lag_tasks_drained = 0;
  size_t rotation = 0;
  double last_completion = 0.0;
  double timeline_bin = 0.0;
  std::vector<uint64_t> timeline;
  /// Completed logical requests per class; empty when mix tracking is off
  /// (sized once in InitRun, so the hot-path increment never grows it).
  std::vector<uint64_t> class_counts;
  size_t dead_count = 0;
  uint64_t next_seq = 0;
  // Lazy open-loop arrival generation: one outstanding arrival event at a
  // time, the next drawn when it pops.
  Rng arrival_rng{0};
  double arrival_time = 0.0;
  double arrival_horizon = 0.0;
  double arrival_mean = 0.0;
  uint64_t arrival_seq = 0;
  bool arrivals_active = false;

  uint64_t NextSeq() { return next_seq++; }

  /// Returns the state to run-start condition, keeping every container's
  /// capacity so repeated runs on the same scratch allocate nothing.
  void Reset(size_t num_backends, size_t servers) {
    if (nodes.size() != num_backends) {
      nodes.assign(num_backends, BackendNode(servers));
    }
    for (BackendNode& node : nodes) node.Reset(servers);
    alive.assign(num_backends, 1);
    epoch.assign(num_backends, 0);
    degrade.assign(num_backends, 1.0);
    lag.resize(num_backends);
    for (auto& tasks : lag) tasks.clear();
    calendar.Reset(num_backends, servers);
    events.Clear();
    requests.clear();
    free_requests.clear();
    responses.Reset();
    crash_scratch.clear();
    completed_reads = 0;
    completed_updates = 0;
    failed_requests = 0;
    rejected_requests = 0;
    retried_requests = 0;
    redispatched_requests = 0;
    lag_tasks_drained = 0;
    rotation = 0;
    dead_count = 0;
    last_completion = 0.0;
    timeline_bin = 0.0;
    timeline.clear();
    class_counts.clear();
    next_seq = 0;
    arrival_time = 0.0;
    arrival_horizon = 0.0;
    arrival_mean = 0.0;
    arrival_seq = 0;
    arrivals_active = false;
  }

  /// Takes a fresh request slot from the pool.
  uint64_t AllocRequest() {
    uint64_t id;
    if (!free_requests.empty()) {
      id = free_requests.back();
      free_requests.pop_back();
    } else {
      id = requests.size();
      requests.push_back(Request{});
    }
    requests[id] = Request{};
    return id;
  }

  /// Returns a terminal request's slot to the pool. Callers guarantee no
  /// outstanding event references the id (terminal means the last
  /// completion/retry path for it just resolved).
  void FreeRequest(uint64_t id) { free_requests.push_back(id); }

  /// Terminal success bookkeeping for one logical request; recycles its
  /// slot.
  void FinishLogical(uint64_t request_id, double now) {
    const Request& req = requests[request_id];
    responses.Add(now - req.submit_time);
    last_completion = now;
    if (timeline_bin > 0.0) {
      const size_t bin = static_cast<size_t>(now / timeline_bin);
      if (bin >= timeline.size()) timeline.resize(bin + 1, 0);
      ++timeline[bin];
    }
    if (!class_counts.empty()) ++class_counts[req.class_index];
    if (req.is_update) {
      ++completed_updates;
    } else {
      ++completed_reads;
    }
    FreeRequest(request_id);
  }

  /// One replica of \p request_id executed to completion; updates counters
  /// when the logical request is done. Returns true iff this call finished
  /// the logical request.
  bool AccountCompletion(uint64_t request_id, double now) {
    Request& req = requests[request_id];
    ++req.completed_replicas;
    if (--req.remaining_replicas != 0) return false;
    FinishLogical(request_id, now);
    return true;
  }
};

Result<ClusterSimulator> ClusterSimulator::Create(
    const Classification& cls, const Allocation& alloc,
    const std::vector<BackendSpec>& backends, const SimulationConfig& config) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_ASSIGN_OR_RETURN(Scheduler scheduler, Scheduler::Build(cls, alloc));
  return ClusterSimulator(cls, alloc, backends, config, std::move(scheduler));
}

ClusterSimulator::ClusterSimulator(ClusterSimulator&&) noexcept = default;
ClusterSimulator::~ClusterSimulator() = default;

ClusterSimulator::ClusterSimulator(const Classification& cls,
                                   const Allocation& alloc,
                                   const std::vector<BackendSpec>& backends,
                                   const SimulationConfig& config,
                                   Scheduler scheduler)
    : cls_(cls),
      alloc_(alloc),
      backends_(backends),
      config_(config),
      scheduler_(std::move(scheduler)) {
  engine::CostModel model(config_.cost_params);
  service_ = model.ServiceMatrix(cls_, alloc_, backends_);
  if (config_.rowa_fanout_overhead > 0.0) {
    for (size_t u = 0; u < cls_.updates.size(); ++u) {
      const size_t fanout = scheduler_.UpdateTargets(u).size();
      if (fanout > 1) {
        const double factor = 1.0 + config_.rowa_fanout_overhead *
                                        static_cast<double>(fanout - 1);
        for (double& service : service_[cls_.reads.size() + u]) {
          service *= factor;
        }
      }
    }
  }
  service_flat_.reserve(service_.size() * backends_.size());
  for (const auto& row : service_) {
    service_flat_.insert(service_flat_.end(), row.begin(), row.end());
  }
  // Execution frequency of a class is its weight divided by the mean cost
  // of one execution (weight = frequency x cost share).
  frequency_.reserve(cls_.NumClasses());
  for (const auto& c : cls_.reads) {
    frequency_.push_back(c.weight / std::max(c.mean_cost, 1e-12));
  }
  for (const auto& c : cls_.updates) {
    frequency_.push_back(c.weight / std::max(c.mean_cost, 1e-12));
  }
  // Left-to-right, matching Rng::NextDiscrete's per-call summation so the
  // hoisted total is bit-identical to what it would compute.
  for (double w : frequency_) frequency_total_ += w;
  // The fault schedule is per-config: merge, validate, and sort it once
  // here instead of on every run.
  FaultPlan plan = config_.fault_plan;
  for (const BackendFailure& failure : config_.failures) {
    plan.Crash(failure.time_seconds, failure.backend);
  }
  fault_status_ = plan.Validate(backends_.size());
  if (fault_status_.ok()) faults_ = plan.Sorted();
}

// qcap-lint: hot-path begin
size_t ClusterSimulator::SampleClass(Rng* rng) const {
  // Same subtractive scan (and therefore the same float arithmetic and
  // result) as Rng::NextDiscrete, with the weight total hoisted to
  // construction instead of re-summed per draw.
  double x = rng->NextDouble() * frequency_total_;
  const size_t n = frequency_.size();
  for (size_t i = 0; i < n; ++i) {
    x -= frequency_[i];
    if (x < 0.0) return i;
  }
  return n - 1;  // Floating-point tail: return last index.
}
// qcap-lint: hot-path end

// qcap-lint: hot-path begin
ClusterSimulator::DispatchOutcome ClusterSimulator::Dispatch(
    RunState* state, uint64_t request_id, size_t class_index,
    double now) const {
  const bool is_update = class_index >= cls_.reads.size();
  Request& req = state->requests[request_id];
  req.class_index = class_index;
  // Response time spans all attempts: the submit instant is fixed at the
  // first dispatch, retries only add to the measured latency.
  if (req.attempts == 0) req.submit_time = now;
  ++req.attempts;
  req.is_update = is_update;

  const double* service_row =
      service_flat_.data() + class_index * backends_.size();
  if (is_update) {
    const size_t u = class_index - cls_.reads.size();
    const auto& targets = scheduler_.UpdateTargets(u);
    size_t alive_count = targets.size();
    if (state->dead_count != 0) {
      alive_count = 0;
      for (size_t b : targets) {
        if (state->alive[b]) ++alive_count;
      }
      if (alive_count == 0) {
        ++state->rejected_requests;
        state->FreeRequest(request_id);
        return DispatchOutcome::kRejected;
      }
    }
    const bool synchronous = config_.propagation == UpdatePropagation::kRowa;
    req.remaining_replicas = synchronous ? alive_count : 1;
    req.completed_replicas = 0;
    size_t alive_seen = 0;
    for (size_t b : targets) {
      double service = service_row[b];
      if (state->dead_count != 0 && !state->alive[b]) {
        // Down replica: it owes this application once it rejoins, so the
        // update commits on the survivors and leaves replica lag behind.
        // qcap-lint: allow(hot-path-growth) -- lag is bounded by updates missed while the replica is down; capacity is kept across recoveries
        state->lag[b].push_back(BackendTask{kBackgroundRequest, service, now});
        continue;
      }
      uint64_t task_request = request_id;
      if (synchronous || alive_seen == 0) {
        // Gates the client's response.
      } else {
        // Asynchronous secondary application: loads the backend but does
        // not gate the client's response.
        task_request = kBackgroundRequest;
        if (config_.propagation == UpdatePropagation::kLazy) {
          service *= config_.lazy_apply_factor;
        }
      }
      ++alive_seen;
      state->nodes[b].Enqueue(BackendTask{task_request, service, now});
      state->pending.SetKey(b, state->nodes[b].pending());
      if (state->nodes[b].StartableAt(now)) StartReady(state, b, now);
    }
  } else {
    // Least-pending-first over the class's *surviving* capable backends;
    // ties rotate round-robin so equal queues share the load. The pending
    // index answers the rotated scan's exact winner in O(log B).
    const size_t start =
        state->rotation % state->pending.NumCandidates(class_index);
    const size_t best = state->pending.Pick(class_index, start);
    if (best == PendingIndex::kNone) {
      ++state->rejected_requests;
      state->FreeRequest(request_id);
      return DispatchOutcome::kRejected;
    }
    // Advance only on success: a rejected dispatch used no candidate, so
    // it must not shift later tie-breaks.
    ++state->rotation;
    req.remaining_replicas = 1;
    req.completed_replicas = 0;
    state->nodes[best].Enqueue(
        BackendTask{request_id, service_row[best], now});
    state->pending.SetKey(best, state->nodes[best].pending());
    if (state->nodes[best].StartableAt(now)) StartReady(state, best, now);
  }
  return DispatchOutcome::kDispatched;
}

void ClusterSimulator::StartReady(RunState* state, size_t backend,
                                  double now) const {
  if (!state->alive[backend]) return;
  BackendNode& node = state->nodes[backend];
  const double scale = state->degrade[backend];
  const uint64_t epoch = state->epoch[backend];
  const size_t base_slot = backend * config_.servers_per_backend;
  BackendTask task;
  double completion = 0.0;
  size_t server = 0;
  while (node.TryStart(now, &task, &completion, scale, &server)) {
    const uint64_t seq = state->NextSeq();
    const size_t slot = base_slot + server;
    if (!state->calendar.occupied(slot)) {
      state->calendar.Schedule(
          slot, backend, completion, seq,
          ServerEvent{task.request_id, static_cast<uint32_t>(epoch),
                      static_cast<uint32_t>(backend),
                      task.service_seconds * scale, task.service_seconds});
    } else {
      // Boundary-time double booking: the server's previous completion is
      // due exactly now but has not popped yet, and the earliest-free scan
      // re-picked the server. The second completion overflows to the aux
      // queue; both sources merge by (time, seq), so pop order is the same
      // as a single calendar's.
      SimEvent ev;
      ev.time = completion;
      ev.seq = seq;
      ev.kind = SimEvent::Kind::kCompletion;
      ev.backend = backend;
      ev.request_id = task.request_id;
      ev.epoch = epoch;
      ev.busy_seconds = task.service_seconds * scale;
      ev.base_service = task.service_seconds;
      state->events.Push(ev);
    }
  }
}
// qcap-lint: hot-path end

bool ClusterSimulator::ScheduleRetry(RunState* state, uint64_t request_id,
                                     double now) const {
  Request& req = state->requests[request_id];
  if (req.attempts >= config_.retry.max_attempts) {
    ++state->failed_requests;
    state->FreeRequest(request_id);
    return true;
  }
  // Exponential backoff, simulated as added delay before the re-dispatch.
  // Incremental: multiplying the previous delay once reproduces the
  // left-associative base * multiplier^(attempts-1) product bit-for-bit.
  req.backoff_seconds = req.attempts <= 1
                            ? config_.retry.base_backoff_seconds
                            : req.backoff_seconds *
                                  config_.retry.backoff_multiplier;
  ++state->retried_requests;
  SimEvent ev;
  ev.time = now + req.backoff_seconds;
  ev.seq = state->NextSeq();
  ev.kind = SimEvent::Kind::kRetry;
  ev.request_id = request_id;
  state->events.Push(ev);
  return false;
}

bool ClusterSimulator::HandleLostWork(RunState* state, uint64_t request_id,
                                      size_t backend, double service_seconds,
                                      double now) const {
  Request& req = state->requests[request_id];
  if (req.is_update) {
    // The crashed replica owes this application after recovery. (If the
    // attempt ends up with *no* surviving replica it is retried in full,
    // which conservatively re-applies on re-dispatch; the rare overlap
    // only inflates recovery-drain work, never client-visible counters.)
    state->lag[backend].push_back(
        BackendTask{kBackgroundRequest, service_seconds, now});
    if (--req.remaining_replicas != 0) return false;
    if (req.completed_replicas > 0) {
      // The update committed on its surviving replicas; the client's
      // response is gated by the slowest of those, i.e. now.
      state->FinishLogical(request_id, now);
      return true;
    }
    // Every replica was destroyed before executing: retry the update.
    return ScheduleRetry(state, request_id, now);
  }
  // Read: the single copy of the work is gone; re-dispatch elsewhere.
  return ScheduleRetry(state, request_id, now);
}

size_t ClusterSimulator::ApplyFault(RunState* state, const FaultEvent& fault,
                                    double now) const {
  const size_t b = fault.backend;
  switch (fault.kind) {
    case FaultEvent::Kind::kCrash: {
      if (!state->alive[b]) return 0;
      state->alive[b] = 0;
      ++state->dead_count;
      ++state->epoch[b];
      state->degrade[b] = 1.0;
      state->pending.SetKey(b, PendingIndex::kDeadKey);
      // Displace the backend's outstanding completions from the calendar
      // into the aux queue, unchanged: they keep their original (time, seq)
      // and the epoch their task started under, so they pop at the same
      // point in the global order and are recognized as stale there
      // (timeout detection), exactly as before.
      const size_t servers = config_.servers_per_backend;
      for (size_t j = 0; j < servers; ++j) {
        const size_t slot = b * servers + j;
        if (!state->calendar.occupied(slot)) continue;
        const ServerEvent& pending_event = state->calendar.event(slot);
        SimEvent ev;
        ev.time = state->calendar.slot_time(slot);
        ev.seq = state->calendar.slot_seq(slot);
        ev.kind = SimEvent::Kind::kCompletion;
        ev.backend = b;
        ev.request_id = pending_event.request_id;
        ev.epoch = pending_event.epoch;
        ev.busy_seconds = pending_event.busy_seconds;
        ev.base_service = pending_event.base_service;
        state->events.Push(ev);
        state->calendar.Clear(slot, b);
      }
      size_t terminals = 0;
      // Queued work is re-dispatched immediately (the scheduler observes
      // the node die); in-flight work is handled when its stale completion
      // event pops (timeout detection).
      state->crash_scratch.clear();
      state->nodes[b].Crash(&state->crash_scratch);
      for (const BackendTask& task : state->crash_scratch) {
        if (task.request_id == kBackgroundRequest) {
          state->lag[b].push_back(
              BackendTask{kBackgroundRequest, task.service_seconds, now});
          continue;
        }
        if (HandleLostWork(state, task.request_id, b, task.service_seconds,
                           now)) {
          ++terminals;
        }
      }
      return terminals;
    }
    case FaultEvent::Kind::kRecover: {
      if (state->alive[b]) return 0;
      state->alive[b] = 1;
      --state->dead_count;
      state->degrade[b] = 1.0;
      // The replacement first drains the replica lag accumulated while
      // down; its FIFO queue guarantees lag runs before new arrivals, and
      // least-pending dispatch steers reads away until it has caught up.
      state->lag_tasks_drained += state->lag[b].size();
      for (const BackendTask& task : state->lag[b]) {
        state->nodes[b].Enqueue(
            BackendTask{kBackgroundRequest, task.service_seconds, now});
      }
      state->lag[b].clear();
      StartReady(state, b, now);
      state->pending.SetKey(b, state->nodes[b].pending());
      return 0;
    }
    case FaultEvent::Kind::kDegrade: {
      if (!state->alive[b]) return 0;
      // Applies to tasks *started* from now on; running tasks finish at
      // their already-scheduled completion.
      state->degrade[b] = fault.factor;
      return 0;
    }
  }
  return 0;
}

Status ClusterSimulator::InitRun(RunState* state) const {
  if (config_.retry.max_attempts == 0) {
    return Status::InvalidArgument("retry.max_attempts must be >= 1");
  }
  if (config_.retry.base_backoff_seconds < 0.0 ||
      config_.retry.backoff_multiplier <= 0.0) {
    return Status::InvalidArgument(
        "retry backoff must be >= 0 with a positive multiplier");
  }
  QCAP_RETURN_NOT_OK(fault_status_);

  state->Reset(backends_.size(), config_.servers_per_backend);
  state->pending = scheduler_.pending_index();
  state->pending.ResetKeys();
  state->timeline_bin = config_.timeline_bin_seconds;
  if (config_.track_class_mix) {
    state->class_counts.assign(cls_.NumClasses(), 0);
  }
  state->faults = faults_;
  state->events.Reserve(state->faults.size() + 64);
  // Fault events enter the queue first, so a fault scheduled at exactly an
  // arrival's timestamp applies before the arrival is dispatched.
  for (size_t i = 0; i < state->faults.size(); ++i) {
    SimEvent ev;
    ev.time = state->faults[i].time_seconds;
    ev.seq = state->NextSeq();
    ev.kind = SimEvent::Kind::kFault;
    ev.request_id = i;
    state->events.Push(ev);
  }
  return Status::OK();
}

void ClusterSimulator::ScheduleNextArrival(RunState* state) const {
  if (!state->arrivals_active) return;
  state->arrival_time +=
      state->arrival_rng.NextExponential(state->arrival_mean);
  if (state->arrival_time >= state->arrival_horizon) {
    state->arrivals_active = false;
    return;
  }
  SimEvent ev;
  ev.time = state->arrival_time;
  // Arrivals occupy the seq band reserved for them at run start, so the
  // (time, seq) order is exactly what the eager generator produced.
  ev.seq = state->arrival_seq++;
  ev.kind = SimEvent::Kind::kArrival;
  state->events.Push(ev);
}

// qcap-lint: hot-path begin
template <typename IssueNext>
void ClusterSimulator::DrainEvents(RunState* state, Rng* rng,
                                   const IssueNext& issue_next) const {
  // One replica of \p request_id (running on \p backend) reached its
  // completion time. Shared by both calendar paths: in-service completions
  // popped from the ServerCalendar and aux-queue kCompletion events
  // (crash-displaced or boundary-overflowed), which carry identical fields.
  const auto handle_completion = [&](size_t backend, uint64_t request_id,
                                     uint64_t epoch, double busy_seconds,
                                     double base_service, double now) {
    if (epoch != state->epoch[backend]) {
      // The task's work was destroyed by a crash after it started; the
      // client notices when the response fails to arrive (now).
      if (request_id == kBackgroundRequest) {
        // qcap-lint: allow(hot-path-growth) -- lag is bounded by work lost to the crash; capacity is kept across recoveries
        state->lag[backend].push_back(
            BackendTask{kBackgroundRequest, base_service, now});
      } else if (HandleLostWork(state, request_id, backend, base_service,
                                now)) {
        issue_next(now);
      }
      return;
    }
    state->nodes[backend].FinishOne(busy_seconds);
    state->pending.SetKey(backend, state->nodes[backend].pending());
    if (request_id != kBackgroundRequest &&
        state->AccountCompletion(request_id, now)) {
      issue_next(now);
    }
    StartReady(state, backend, now);
  };

  // Merge the two calendars by (time, seq): the combined pop order is
  // exactly what a single event heap over all events would produce.
  SimEvent ev;
  while (true) {
    const ServerCalendar::Key calendar_key = state->calendar.top_key();
    if (!state->events.empty()) {
      if (ServerCalendar::MakeKey(state->events.top_time(),
                                  state->events.top_seq()) < calendar_key) {
        state->events.Pop(&ev);
        const double now = ev.time;
        switch (ev.kind) {
          case SimEvent::Kind::kArrival: {
            const uint64_t id = state->AllocRequest();
            if (Dispatch(state, id, SampleClass(rng), now) ==
                DispatchOutcome::kRejected) {
              issue_next(now);
            }
            ScheduleNextArrival(state);
            break;
          }
          case SimEvent::Kind::kFault: {
            const size_t terminals =
                ApplyFault(state, state->faults[ev.request_id], now);
            for (size_t i = 0; i < terminals; ++i) issue_next(now);
            break;
          }
          case SimEvent::Kind::kRetry: {
            const size_t class_index =
                state->requests[ev.request_id].class_index;
            if (Dispatch(state, ev.request_id, class_index, now) ==
                DispatchOutcome::kDispatched) {
              ++state->redispatched_requests;
            } else {
              issue_next(now);
            }
            break;
          }
          case SimEvent::Kind::kCompletion: {
            handle_completion(ev.backend, ev.request_id, ev.epoch,
                              ev.busy_seconds, ev.base_service, now);
            break;
          }
        }
        continue;
      }
    }
    if (calendar_key == ServerCalendar::kIdleKey) break;
    const size_t slot = state->calendar.top_server();
    // The slot's payload is read at the call (arguments pass by value)
    // before the handler can rebook the slot, so no copy is needed.
    const ServerEvent& completion = state->calendar.event(slot);
    state->calendar.Clear(slot, completion.backend);
    handle_completion(completion.backend, completion.request_id,
                      completion.epoch, completion.busy_seconds,
                      completion.base_service,
                      std::bit_cast<double>(
                          static_cast<uint64_t>(calendar_key >> 64)));
  }
}
// qcap-lint: hot-path end

void ClusterSimulator::FinishInto(RunState* state, SimStats* out) const {
  out->duration_seconds = state->last_completion;
  out->completed_reads = state->completed_reads;
  out->completed_updates = state->completed_updates;
  out->failed_requests = state->failed_requests;
  out->rejected_requests = state->rejected_requests;
  out->retried_requests = state->retried_requests;
  out->redispatched_requests = state->redispatched_requests;
  out->lag_tasks_drained = state->lag_tasks_drained;
  out->throughput = out->duration_seconds > 0.0
                        ? static_cast<double>(out->completed_total()) /
                              out->duration_seconds
                        : 0.0;
  out->avg_response_seconds = state->responses.mean();
  out->max_response_seconds = state->responses.max();
  state->responses.Percentiles(
      &state->percentile_scratch, &out->p50_response_seconds,
      &out->p95_response_seconds, &out->p99_response_seconds);
  const uint64_t offered = out->completed_total() + out->failed_requests +
                           out->rejected_requests;
  out->availability =
      offered > 0
          ? static_cast<double>(out->completed_total()) /
                static_cast<double>(offered)
          : 1.0;
  out->recovery_seconds = 0.0;
  out->timeline_bin_seconds = state->timeline_bin;
  out->timeline_completions = state->timeline;
  out->class_completions = state->class_counts;
  out->backend_busy_seconds.clear();
  out->backend_busy_seconds.reserve(state->nodes.size());
  for (const BackendNode& node : state->nodes) {
    out->backend_busy_seconds.push_back(node.busy_seconds());
  }
}

Status ClusterSimulator::RunClosedInto(RunState* state, uint64_t seed,
                                       uint64_t num_requests,
                                       size_t concurrency,
                                       SimStats* out) const {
  if (num_requests == 0 || concurrency == 0) {
    return Status::InvalidArgument("num_requests and concurrency must be > 0");
  }
  Rng rng(seed);
  QCAP_RETURN_NOT_OK(InitRun(state));
  state->responses.Reserve(num_requests);

  uint64_t issued = 0;
  // Keeps the concurrency window full: every terminal outcome (completed,
  // failed, rejected) admits the next request; rejected dispatches are
  // terminal immediately, so the window skips past them.
  const auto issue_next = [&](double now) {
    while (issued < num_requests) {
      ++issued;
      const uint64_t id = state->AllocRequest();
      if (Dispatch(state, id, SampleClass(&rng), now) ==
          DispatchOutcome::kDispatched) {
        break;
      }
    }
  };
  const uint64_t initial = std::min<uint64_t>(concurrency, num_requests);
  for (uint64_t i = 0; i < initial; ++i) issue_next(0.0);

  DrainEvents(state, &rng, issue_next);
  FinishInto(state, out);
  return Status::OK();
}

Status ClusterSimulator::RunOpenInto(RunState* state, uint64_t seed,
                                     double duration_seconds,
                                     double arrival_rate,
                                     SimStats* out) const {
  if (duration_seconds <= 0.0 || arrival_rate <= 0.0) {
    return Status::InvalidArgument("duration and arrival rate must be > 0");
  }
  QCAP_RETURN_NOT_OK(InitRun(state));

  // Lazy Poisson arrivals, bit-identical to the eager pre-generated list:
  // a probe copy of the seeded RNG fast-forwards through every arrival
  // draw (O(1) memory) to (a) count the arrivals N, reserving their seq
  // band so completion seqs start at the same values as before, and (b)
  // position the class-sampling stream exactly where it started when
  // arrivals were drawn up front. The arrival stream itself restarts from
  // the seed and is re-drawn one arrival at a time as events pop.
  state->arrival_mean = 1.0 / arrival_rate;
  state->arrival_horizon = duration_seconds;
  state->arrival_rng = Rng(seed);
  Rng class_rng(seed);
  uint64_t num_arrivals = 0;
  {
    double t = 0.0;
    while (true) {
      t += class_rng.NextExponential(state->arrival_mean);
      if (t >= duration_seconds) break;
      ++num_arrivals;
    }
  }
  state->arrival_seq = state->next_seq;
  state->next_seq += num_arrivals;
  state->arrivals_active = true;
  state->arrival_time = 0.0;
  state->responses.Reserve(num_arrivals);
  ScheduleNextArrival(state);

  DrainEvents(state, &class_rng, [](double) {});
  FinishInto(state, out);
  // Open-loop throughput is measured over the arrival window.
  out->duration_seconds = std::max(duration_seconds, state->last_completion);
  out->throughput = out->duration_seconds > 0.0
                        ? static_cast<double>(out->completed_total()) /
                              out->duration_seconds
                        : 0.0;
  return Status::OK();
}

ClusterSimulator::RunState* ClusterSimulator::Scratch() {
  if (!scratch_) scratch_ = std::make_unique<RunState>();
  return scratch_.get();
}

Result<SimStats> ClusterSimulator::RunClosed(uint64_t num_requests,
                                             size_t concurrency) {
  SimStats out;
  QCAP_RETURN_NOT_OK(
      RunClosedInto(Scratch(), config_.seed, num_requests, concurrency, &out));
  return out;
}

Status ClusterSimulator::RunClosed(uint64_t num_requests, size_t concurrency,
                                   SimStats* out) {
  return RunClosedInto(Scratch(), config_.seed, num_requests, concurrency,
                       out);
}

Result<SimStats> ClusterSimulator::RunOpen(double duration_seconds,
                                           double arrival_rate) {
  SimStats out;
  QCAP_RETURN_NOT_OK(RunOpenInto(Scratch(), config_.seed, duration_seconds,
                                 arrival_rate, &out));
  return out;
}

Status ClusterSimulator::RunOpen(double duration_seconds, double arrival_rate,
                                 SimStats* out) {
  return RunOpenInto(Scratch(), config_.seed, duration_seconds, arrival_rate,
                     out);
}

namespace {

/// Shared sweep driver: \p run_one(state, seed, &stats) executes one
/// replication. Each replication is fully independent (own RunState, own
/// RNGs) and writes only its submission-order slot, so results are
/// bit-identical at any thread count.
template <typename RunOne>
Result<std::vector<SimStats>> RunSweep(uint64_t base_seed,
                                       const SweepOptions& sweep,
                                       const RunOne& run_one) {
  if (sweep.repeat == 0) {
    return Status::InvalidArgument("sweep.repeat must be >= 1");
  }
  std::vector<SimStats> results(sweep.repeat);
  std::vector<Status> statuses(sweep.repeat);
  ThreadPool* pool = sweep.pool;
  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr && sweep.threads > 1 && sweep.repeat > 1) {
    owned = std::make_unique<ThreadPool>(sweep.threads);
    pool = owned.get();
  }
  ParallelFor(pool, sweep.repeat, [&](size_t i) {
    const uint64_t seed =
        base_seed + static_cast<uint64_t>(i) * sweep.seed_stride;
    statuses[i] = run_one(seed, &results[i]);
  });
  // Deterministic error reporting: the lowest-index failure wins.
  for (const Status& status : statuses) {
    QCAP_RETURN_NOT_OK(status);
  }
  return results;
}

}  // namespace

Result<std::vector<SimStats>> ClusterSimulator::RunClosedSweep(
    uint64_t num_requests, size_t concurrency,
    const SweepOptions& sweep) const {
  return RunSweep(config_.seed, sweep,
                  [&](uint64_t seed, SimStats* out) {
                    RunState state;
                    return RunClosedInto(&state, seed, num_requests,
                                         concurrency, out);
                  });
}

Result<std::vector<SimStats>> ClusterSimulator::RunOpenSweep(
    double duration_seconds, double arrival_rate,
    const SweepOptions& sweep) const {
  return RunSweep(config_.seed, sweep,
                  [&](uint64_t seed, SimStats* out) {
                    RunState state;
                    return RunOpenInto(&state, seed, duration_seconds,
                                       arrival_rate, out);
                  });
}

}  // namespace qcap
