#include "cluster/simulator.h"

#include <algorithm>
#include <queue>

#include "cluster/backend_node.h"

namespace qcap {

namespace {

/// Sentinel request id for asynchronous secondary update application
/// (primary-copy / lazy propagation) and replica-lag drain work: consumes
/// backend capacity but never completes a logical request.
constexpr uint64_t kBackgroundRequest = ~uint64_t{0};

struct Event {
  double time = 0.0;
  /// Tie-break: events at equal times apply in creation order, making the
  /// processing order (and with it retry ordering) fully deterministic.
  uint64_t seq = 0;
  enum class Kind { kCompletion, kArrival, kFault, kRetry } kind =
      Kind::kCompletion;
  size_t backend = 0;         // kCompletion.
  uint64_t request_id = 0;    // kCompletion / kArrival / kRetry; for kFault
                              // the index into RunState::faults.
  uint64_t epoch = 0;         // kCompletion: backend epoch at task start.
  double busy_seconds = 0.0;  // kCompletion: actual (degrade-scaled) time.
  double base_service = 0.0;  // kCompletion: nominal service time.

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct Request {
  size_t class_index = 0;  // reads first, then updates.
  size_t remaining_replicas = 0;
  size_t completed_replicas = 0;
  size_t attempts = 0;  // dispatch attempts used (retry budget).
  double submit_time = 0.0;
  bool is_update = false;
};

}  // namespace

struct ClusterSimulator::RunState {
  std::vector<BackendNode> nodes;
  std::vector<bool> alive;
  /// Bumped on every crash; completion events carry the epoch their task
  /// started under, so stale events (work destroyed by the crash) are
  /// recognizable even after the backend recovers.
  std::vector<uint64_t> epoch;
  /// Service-time multiplier per backend (straggler mode; 1 = healthy).
  std::vector<double> degrade;
  /// Missed update applications per backend, drained FIFO on recovery.
  std::vector<std::vector<BackendTask>> lag;
  std::vector<FaultEvent> faults;  // sorted by (time, insertion order).
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<Request> requests;
  ResponseAccumulator responses;
  uint64_t completed_reads = 0;
  uint64_t completed_updates = 0;
  uint64_t failed_requests = 0;
  uint64_t rejected_requests = 0;
  uint64_t retried_requests = 0;
  uint64_t redispatched_requests = 0;
  uint64_t lag_tasks_drained = 0;
  size_t rotation = 0;
  double last_completion = 0.0;
  double timeline_bin = 0.0;
  std::vector<uint64_t> timeline;
  uint64_t next_seq = 0;

  uint64_t NextSeq() { return next_seq++; }

  /// Terminal success bookkeeping for one logical request.
  void FinishLogical(uint64_t request_id, double now) {
    const Request& req = requests[request_id];
    responses.Add(now - req.submit_time);
    last_completion = now;
    if (timeline_bin > 0.0) {
      const size_t bin = static_cast<size_t>(now / timeline_bin);
      if (bin >= timeline.size()) timeline.resize(bin + 1, 0);
      ++timeline[bin];
    }
    if (req.is_update) {
      ++completed_updates;
    } else {
      ++completed_reads;
    }
  }

  /// One replica of \p request_id executed to completion; updates counters
  /// when the logical request is done. Returns true iff this call finished
  /// the logical request.
  bool AccountCompletion(uint64_t request_id, double now) {
    Request& req = requests[request_id];
    ++req.completed_replicas;
    if (--req.remaining_replicas != 0) return false;
    FinishLogical(request_id, now);
    return true;
  }
};

Result<ClusterSimulator> ClusterSimulator::Create(
    const Classification& cls, const Allocation& alloc,
    const std::vector<BackendSpec>& backends, const SimulationConfig& config) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_ASSIGN_OR_RETURN(Scheduler scheduler, Scheduler::Build(cls, alloc));
  return ClusterSimulator(cls, alloc, backends, config, std::move(scheduler));
}

ClusterSimulator::ClusterSimulator(const Classification& cls,
                                   const Allocation& alloc,
                                   const std::vector<BackendSpec>& backends,
                                   const SimulationConfig& config,
                                   Scheduler scheduler)
    : cls_(cls),
      alloc_(alloc),
      backends_(backends),
      config_(config),
      scheduler_(std::move(scheduler)) {
  engine::CostModel model(config_.cost_params);
  service_ = model.ServiceMatrix(cls_, alloc_, backends_);
  if (config_.rowa_fanout_overhead > 0.0) {
    for (size_t u = 0; u < cls_.updates.size(); ++u) {
      const size_t fanout = scheduler_.UpdateTargets(u).size();
      if (fanout > 1) {
        const double factor = 1.0 + config_.rowa_fanout_overhead *
                                        static_cast<double>(fanout - 1);
        for (double& service : service_[cls_.reads.size() + u]) {
          service *= factor;
        }
      }
    }
  }
  // Execution frequency of a class is its weight divided by the mean cost
  // of one execution (weight = frequency x cost share).
  frequency_.reserve(cls_.NumClasses());
  for (const auto& c : cls_.reads) {
    frequency_.push_back(c.weight / std::max(c.mean_cost, 1e-12));
  }
  for (const auto& c : cls_.updates) {
    frequency_.push_back(c.weight / std::max(c.mean_cost, 1e-12));
  }
}

size_t ClusterSimulator::SampleClass(Rng* rng) const {
  return rng->NextDiscrete(frequency_);
}

ClusterSimulator::DispatchOutcome ClusterSimulator::Dispatch(
    RunState* state, uint64_t request_id, size_t class_index, double now) {
  const bool is_update = class_index >= cls_.reads.size();
  Request& req = state->requests[request_id];
  req.class_index = class_index;
  // Response time spans all attempts: the submit instant is fixed at the
  // first dispatch, retries only add to the measured latency.
  if (req.attempts == 0) req.submit_time = now;
  ++req.attempts;
  req.is_update = is_update;

  if (is_update) {
    const size_t u = class_index - cls_.reads.size();
    const auto& targets = scheduler_.UpdateTargets(u);
    size_t alive_count = 0;
    for (size_t b : targets) {
      if (state->alive[b]) ++alive_count;
    }
    if (alive_count == 0) {
      ++state->rejected_requests;
      return DispatchOutcome::kRejected;
    }
    const bool synchronous = config_.propagation == UpdatePropagation::kRowa;
    req.remaining_replicas = synchronous ? alive_count : 1;
    req.completed_replicas = 0;
    size_t alive_seen = 0;
    for (size_t b : targets) {
      double service = service_[class_index][b];
      if (!state->alive[b]) {
        // Down replica: it owes this application once it rejoins, so the
        // update commits on the survivors and leaves replica lag behind.
        state->lag[b].push_back(BackendTask{kBackgroundRequest, service, now});
        continue;
      }
      uint64_t task_request = request_id;
      if (synchronous || alive_seen == 0) {
        // Gates the client's response.
      } else {
        // Asynchronous secondary application: loads the backend but does
        // not gate the client's response.
        task_request = kBackgroundRequest;
        if (config_.propagation == UpdatePropagation::kLazy) {
          service *= config_.lazy_apply_factor;
        }
      }
      ++alive_seen;
      state->nodes[b].Enqueue(BackendTask{task_request, service, now});
      StartReady(state, b, now);
    }
  } else {
    // Least-pending-first over the class's *surviving* capable backends;
    // ties rotate round-robin so equal queues share the load.
    const auto& candidates = scheduler_.ReadCandidates(class_index);
    const size_t start = state->rotation++ % candidates.size();
    size_t best = state->nodes.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      const size_t b = candidates[(start + i) % candidates.size()];
      if (!state->alive[b]) continue;
      if (best == state->nodes.size() ||
          state->nodes[b].pending() < state->nodes[best].pending()) {
        best = b;
      }
    }
    if (best == state->nodes.size()) {
      ++state->rejected_requests;
      return DispatchOutcome::kRejected;
    }
    req.remaining_replicas = 1;
    req.completed_replicas = 0;
    state->nodes[best].Enqueue(
        BackendTask{request_id, service_[class_index][best], now});
    StartReady(state, best, now);
  }
  return DispatchOutcome::kDispatched;
}

void ClusterSimulator::StartReady(RunState* state, size_t backend, double now) {
  if (!state->alive[backend]) return;
  BackendNode& node = state->nodes[backend];
  const double scale = state->degrade[backend];
  while (node.CanStart(now)) {
    BackendTask task;
    double completion = 0.0;
    if (!node.StartNext(now, &task, &completion, scale)) break;
    Event ev;
    ev.time = completion;
    ev.seq = state->NextSeq();
    ev.kind = Event::Kind::kCompletion;
    ev.backend = backend;
    ev.request_id = task.request_id;
    ev.epoch = state->epoch[backend];
    ev.busy_seconds = task.service_seconds * scale;
    ev.base_service = task.service_seconds;
    state->events.push(ev);
  }
}

bool ClusterSimulator::ScheduleRetry(RunState* state, uint64_t request_id,
                                     double now) {
  Request& req = state->requests[request_id];
  if (req.attempts >= config_.retry.max_attempts) {
    ++state->failed_requests;
    return true;
  }
  // Exponential backoff, simulated as added delay before the re-dispatch.
  double delay = config_.retry.base_backoff_seconds;
  for (size_t i = 1; i < req.attempts; ++i) {
    delay *= config_.retry.backoff_multiplier;
  }
  ++state->retried_requests;
  Event ev;
  ev.time = now + delay;
  ev.seq = state->NextSeq();
  ev.kind = Event::Kind::kRetry;
  ev.request_id = request_id;
  state->events.push(ev);
  return false;
}

bool ClusterSimulator::HandleLostWork(RunState* state, uint64_t request_id,
                                      size_t backend, double service_seconds,
                                      double now) {
  Request& req = state->requests[request_id];
  if (req.is_update) {
    // The crashed replica owes this application after recovery. (If the
    // attempt ends up with *no* surviving replica it is retried in full,
    // which conservatively re-applies on re-dispatch; the rare overlap
    // only inflates recovery-drain work, never client-visible counters.)
    state->lag[backend].push_back(
        BackendTask{kBackgroundRequest, service_seconds, now});
    if (--req.remaining_replicas != 0) return false;
    if (req.completed_replicas > 0) {
      // The update committed on its surviving replicas; the client's
      // response is gated by the slowest of those, i.e. now.
      state->FinishLogical(request_id, now);
      return true;
    }
    // Every replica was destroyed before executing: retry the update.
    return ScheduleRetry(state, request_id, now);
  }
  // Read: the single copy of the work is gone; re-dispatch elsewhere.
  return ScheduleRetry(state, request_id, now);
}

size_t ClusterSimulator::ApplyFault(RunState* state, const FaultEvent& fault,
                                    double now) {
  const size_t b = fault.backend;
  switch (fault.kind) {
    case FaultEvent::Kind::kCrash: {
      if (!state->alive[b]) return 0;
      state->alive[b] = false;
      ++state->epoch[b];
      state->degrade[b] = 1.0;
      size_t terminals = 0;
      // Queued work is re-dispatched immediately (the scheduler observes
      // the node die); in-flight work is handled when its stale completion
      // event pops (timeout detection).
      for (const BackendTask& task : state->nodes[b].Crash()) {
        if (task.request_id == kBackgroundRequest) {
          state->lag[b].push_back(
              BackendTask{kBackgroundRequest, task.service_seconds, now});
          continue;
        }
        if (HandleLostWork(state, task.request_id, b, task.service_seconds,
                           now)) {
          ++terminals;
        }
      }
      return terminals;
    }
    case FaultEvent::Kind::kRecover: {
      if (state->alive[b]) return 0;
      state->alive[b] = true;
      state->degrade[b] = 1.0;
      // The replacement first drains the replica lag accumulated while
      // down; its FIFO queue guarantees lag runs before new arrivals, and
      // least-pending dispatch steers reads away until it has caught up.
      state->lag_tasks_drained += state->lag[b].size();
      for (const BackendTask& task : state->lag[b]) {
        state->nodes[b].Enqueue(
            BackendTask{kBackgroundRequest, task.service_seconds, now});
      }
      state->lag[b].clear();
      StartReady(state, b, now);
      return 0;
    }
    case FaultEvent::Kind::kDegrade: {
      if (!state->alive[b]) return 0;
      // Applies to tasks *started* from now on; running tasks finish at
      // their already-scheduled completion.
      state->degrade[b] = fault.factor;
      return 0;
    }
  }
  return 0;
}

Status ClusterSimulator::InitRun(RunState* state) {
  if (config_.retry.max_attempts == 0) {
    return Status::InvalidArgument("retry.max_attempts must be >= 1");
  }
  if (config_.retry.base_backoff_seconds < 0.0 ||
      config_.retry.backoff_multiplier <= 0.0) {
    return Status::InvalidArgument(
        "retry backoff must be >= 0 with a positive multiplier");
  }
  FaultPlan plan = config_.fault_plan;
  for (const BackendFailure& failure : config_.failures) {
    plan.Crash(failure.time_seconds, failure.backend);
  }
  QCAP_RETURN_NOT_OK(plan.Validate(backends_.size()));

  state->nodes.assign(backends_.size(),
                      BackendNode(config_.servers_per_backend));
  state->alive.assign(backends_.size(), true);
  state->epoch.assign(backends_.size(), 0);
  state->degrade.assign(backends_.size(), 1.0);
  state->lag.assign(backends_.size(), {});
  state->timeline_bin = config_.timeline_bin_seconds;
  state->faults = plan.Sorted();
  // Fault events enter the queue first, so a fault scheduled at exactly an
  // arrival's timestamp applies before the arrival is dispatched.
  for (size_t i = 0; i < state->faults.size(); ++i) {
    Event ev;
    ev.time = state->faults[i].time_seconds;
    ev.seq = state->NextSeq();
    ev.kind = Event::Kind::kFault;
    ev.request_id = i;
    state->events.push(ev);
  }
  return Status::OK();
}

template <typename IssueNext>
void ClusterSimulator::DrainEvents(RunState* state, Rng* rng,
                                   const IssueNext& issue_next) {
  while (!state->events.empty()) {
    const Event ev = state->events.top();
    state->events.pop();
    const double now = ev.time;
    switch (ev.kind) {
      case Event::Kind::kArrival:
        if (Dispatch(state, ev.request_id, SampleClass(rng), now) ==
            DispatchOutcome::kRejected) {
          issue_next(now);
        }
        break;
      case Event::Kind::kFault: {
        const size_t terminals =
            ApplyFault(state, state->faults[ev.request_id], now);
        for (size_t i = 0; i < terminals; ++i) issue_next(now);
        break;
      }
      case Event::Kind::kRetry: {
        const Request& req = state->requests[ev.request_id];
        if (Dispatch(state, ev.request_id, req.class_index, now) ==
            DispatchOutcome::kDispatched) {
          ++state->redispatched_requests;
        } else {
          issue_next(now);
        }
        break;
      }
      case Event::Kind::kCompletion: {
        if (ev.epoch != state->epoch[ev.backend]) {
          // The task's work was destroyed by a crash after it started; the
          // client notices when the response fails to arrive (now).
          if (ev.request_id == kBackgroundRequest) {
            state->lag[ev.backend].push_back(
                BackendTask{kBackgroundRequest, ev.base_service, now});
          } else if (HandleLostWork(state, ev.request_id, ev.backend,
                                    ev.base_service, now)) {
            issue_next(now);
          }
          break;
        }
        state->nodes[ev.backend].FinishOne(ev.busy_seconds);
        if (ev.request_id != kBackgroundRequest &&
            state->AccountCompletion(ev.request_id, now)) {
          issue_next(now);
        }
        StartReady(state, ev.backend, now);
        break;
      }
    }
  }
}

SimStats ClusterSimulator::Finish(const RunState& state) const {
  SimStats stats;
  stats.duration_seconds = state.last_completion;
  stats.completed_reads = state.completed_reads;
  stats.completed_updates = state.completed_updates;
  stats.failed_requests = state.failed_requests;
  stats.rejected_requests = state.rejected_requests;
  stats.retried_requests = state.retried_requests;
  stats.redispatched_requests = state.redispatched_requests;
  stats.lag_tasks_drained = state.lag_tasks_drained;
  stats.throughput = stats.duration_seconds > 0.0
                         ? static_cast<double>(stats.completed_total()) /
                               stats.duration_seconds
                         : 0.0;
  stats.avg_response_seconds = state.responses.mean();
  stats.max_response_seconds = state.responses.max();
  stats.p50_response_seconds = state.responses.Percentile(0.50);
  stats.p95_response_seconds = state.responses.Percentile(0.95);
  stats.p99_response_seconds = state.responses.Percentile(0.99);
  const uint64_t offered = stats.completed_total() + stats.failed_requests +
                           stats.rejected_requests;
  stats.availability =
      offered > 0
          ? static_cast<double>(stats.completed_total()) /
                static_cast<double>(offered)
          : 1.0;
  stats.timeline_bin_seconds = state.timeline_bin;
  stats.timeline_completions = state.timeline;
  stats.backend_busy_seconds.reserve(state.nodes.size());
  for (const auto& node : state.nodes) {
    stats.backend_busy_seconds.push_back(node.busy_seconds());
  }
  return stats;
}

Result<SimStats> ClusterSimulator::RunClosed(uint64_t num_requests,
                                             size_t concurrency) {
  if (num_requests == 0 || concurrency == 0) {
    return Status::InvalidArgument("num_requests and concurrency must be > 0");
  }
  Rng rng(config_.seed);
  RunState state;
  QCAP_RETURN_NOT_OK(InitRun(&state));
  state.requests.resize(num_requests);

  uint64_t issued = 0;
  // Keeps the concurrency window full: every terminal outcome (completed,
  // failed, rejected) admits the next request; rejected dispatches are
  // terminal immediately, so the window skips past them.
  const auto issue_next = [&](double now) {
    while (issued < num_requests) {
      const uint64_t id = issued++;
      if (Dispatch(&state, id, SampleClass(&rng), now) ==
          DispatchOutcome::kDispatched) {
        break;
      }
    }
  };
  const uint64_t initial = std::min<uint64_t>(concurrency, num_requests);
  for (uint64_t i = 0; i < initial; ++i) issue_next(0.0);

  DrainEvents(&state, &rng, issue_next);
  return Finish(state);
}

Result<SimStats> ClusterSimulator::RunOpen(double duration_seconds,
                                           double arrival_rate) {
  if (duration_seconds <= 0.0 || arrival_rate <= 0.0) {
    return Status::InvalidArgument("duration and arrival rate must be > 0");
  }
  Rng rng(config_.seed);
  RunState state;
  QCAP_RETURN_NOT_OK(InitRun(&state));

  // Pre-generate Poisson arrival times.
  std::vector<double> arrivals;
  double t = 0.0;
  while (true) {
    t += rng.NextExponential(1.0 / arrival_rate);
    if (t >= duration_seconds) break;
    arrivals.push_back(t);
  }
  state.requests.resize(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    Event ev;
    ev.time = arrivals[i];
    ev.seq = state.NextSeq();
    ev.kind = Event::Kind::kArrival;
    ev.request_id = i;
    state.events.push(ev);
  }

  DrainEvents(&state, &rng, [](double) {});
  SimStats stats = Finish(state);
  // Open-loop throughput is measured over the arrival window.
  stats.duration_seconds = std::max(duration_seconds, state.last_completion);
  stats.throughput = stats.duration_seconds > 0.0
                         ? static_cast<double>(stats.completed_total()) /
                               stats.duration_seconds
                         : 0.0;
  return stats;
}

}  // namespace qcap
