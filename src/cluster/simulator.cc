#include "cluster/simulator.h"

#include <algorithm>
#include <queue>

#include "cluster/backend_node.h"

namespace qcap {

namespace {

/// Sentinel request id for asynchronous secondary update application
/// (primary-copy / lazy propagation): consumes backend capacity but never
/// completes a logical request.
constexpr uint64_t kBackgroundRequest = ~uint64_t{0};

struct Event {
  double time = 0.0;
  enum class Kind { kCompletion, kArrival, kFailure } kind = Kind::kCompletion;
  size_t backend = 0;        // kCompletion / kFailure.
  uint64_t request_id = 0;   // kCompletion / kArrival.
  double busy_seconds = 0.0; // kCompletion.

  bool operator>(const Event& other) const { return time > other.time; }
};

struct Request {
  size_t class_index = 0;  // reads first, then updates.
  size_t remaining_replicas = 0;
  double submit_time = 0.0;
  bool is_update = false;
  bool failed = false;  // A replica was lost to a crash.
};

}  // namespace

struct ClusterSimulator::RunState {
  std::vector<BackendNode> nodes;
  std::vector<bool> alive;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<Request> requests;
  ResponseAccumulator responses;
  uint64_t completed_reads = 0;
  uint64_t completed_updates = 0;
  uint64_t failed_requests = 0;
  uint64_t rejected_requests = 0;
  size_t rotation = 0;
  double last_completion = 0.0;

  /// One replica of \p request_id finished or was lost; updates counters
  /// when the logical request is done. Returns true iff this call finished
  /// the logical request.
  bool Account(uint64_t request_id, double now, bool lost) {
    Request& req = requests[request_id];
    if (lost) req.failed = true;
    if (--req.remaining_replicas != 0) return false;
    if (req.failed) {
      ++failed_requests;
      return true;
    }
    responses.Add(now - req.submit_time);
    last_completion = now;
    if (req.is_update) {
      ++completed_updates;
    } else {
      ++completed_reads;
    }
    return true;
  }
};

Result<ClusterSimulator> ClusterSimulator::Create(
    const Classification& cls, const Allocation& alloc,
    const std::vector<BackendSpec>& backends, const SimulationConfig& config) {
  QCAP_RETURN_NOT_OK(ValidateBackends(backends));
  QCAP_ASSIGN_OR_RETURN(Scheduler scheduler, Scheduler::Build(cls, alloc));
  return ClusterSimulator(cls, alloc, backends, config, std::move(scheduler));
}

ClusterSimulator::ClusterSimulator(const Classification& cls,
                                   const Allocation& alloc,
                                   const std::vector<BackendSpec>& backends,
                                   const SimulationConfig& config,
                                   Scheduler scheduler)
    : cls_(cls),
      alloc_(alloc),
      backends_(backends),
      config_(config),
      scheduler_(std::move(scheduler)) {
  engine::CostModel model(config_.cost_params);
  service_ = model.ServiceMatrix(cls_, alloc_, backends_);
  if (config_.rowa_fanout_overhead > 0.0) {
    for (size_t u = 0; u < cls_.updates.size(); ++u) {
      const size_t fanout = scheduler_.UpdateTargets(u).size();
      if (fanout > 1) {
        const double factor = 1.0 + config_.rowa_fanout_overhead *
                                        static_cast<double>(fanout - 1);
        for (double& service : service_[cls_.reads.size() + u]) {
          service *= factor;
        }
      }
    }
  }
  // Execution frequency of a class is its weight divided by the mean cost
  // of one execution (weight = frequency x cost share).
  frequency_.reserve(cls_.NumClasses());
  for (const auto& c : cls_.reads) {
    frequency_.push_back(c.weight / std::max(c.mean_cost, 1e-12));
  }
  for (const auto& c : cls_.updates) {
    frequency_.push_back(c.weight / std::max(c.mean_cost, 1e-12));
  }
}

size_t ClusterSimulator::SampleClass(Rng* rng) const {
  return rng->NextDiscrete(frequency_);
}

void ClusterSimulator::Dispatch(RunState* state, uint64_t request_id,
                                size_t class_index, double now) {
  const bool is_update = class_index >= cls_.reads.size();
  Request& req = state->requests[request_id];
  req.class_index = class_index;
  req.submit_time = now;
  req.is_update = is_update;

  if (is_update) {
    const size_t u = class_index - cls_.reads.size();
    std::vector<size_t> targets;
    for (size_t b : scheduler_.UpdateTargets(u)) {
      if (state->alive[b]) targets.push_back(b);
    }
    if (targets.empty()) {
      ++state->rejected_requests;
      return;
    }
    const bool synchronous =
        config_.propagation == UpdatePropagation::kRowa;
    req.remaining_replicas = synchronous ? targets.size() : 1;
    for (size_t i = 0; i < targets.size(); ++i) {
      const size_t b = targets[i];
      double service = service_[class_index][b];
      uint64_t task_request = request_id;
      if (!synchronous && i > 0) {
        // Asynchronous secondary application: loads the backend but does
        // not gate the client's response.
        task_request = kBackgroundRequest;
        if (config_.propagation == UpdatePropagation::kLazy) {
          service *= config_.lazy_apply_factor;
        }
      }
      state->nodes[b].Enqueue(BackendTask{task_request, service, now});
      StartReady(state, b, now);
    }
  } else {
    // Least-pending-first over the class's *surviving* capable backends;
    // ties rotate round-robin so equal queues share the load.
    const auto& candidates = scheduler_.ReadCandidates(class_index);
    const size_t start = state->rotation++ % candidates.size();
    size_t best = state->nodes.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      const size_t b = candidates[(start + i) % candidates.size()];
      if (!state->alive[b]) continue;
      if (best == state->nodes.size() ||
          state->nodes[b].pending() < state->nodes[best].pending()) {
        best = b;
      }
    }
    if (best == state->nodes.size()) {
      ++state->rejected_requests;
      return;
    }
    req.remaining_replicas = 1;
    state->nodes[best].Enqueue(
        BackendTask{request_id, service_[class_index][best], now});
    StartReady(state, best, now);
  }
}

void ClusterSimulator::StartReady(RunState* state, size_t backend, double now) {
  if (!state->alive[backend]) return;
  BackendNode& node = state->nodes[backend];
  while (node.CanStart(now)) {
    BackendTask task;
    double completion = 0.0;
    if (!node.StartNext(now, &task, &completion)) break;
    state->events.push(Event{completion, Event::Kind::kCompletion, backend,
                             task.request_id, task.service_seconds});
  }
}

SimStats ClusterSimulator::Finish(const RunState& state) const {
  SimStats stats;
  stats.duration_seconds = state.last_completion;
  stats.completed_reads = state.completed_reads;
  stats.completed_updates = state.completed_updates;
  stats.failed_requests = state.failed_requests;
  stats.rejected_requests = state.rejected_requests;
  stats.throughput = stats.duration_seconds > 0.0
                         ? static_cast<double>(stats.completed_total()) /
                               stats.duration_seconds
                         : 0.0;
  stats.avg_response_seconds = state.responses.mean();
  stats.max_response_seconds = state.responses.max();
  stats.backend_busy_seconds.reserve(state.nodes.size());
  for (const auto& node : state.nodes) {
    stats.backend_busy_seconds.push_back(node.busy_seconds());
  }
  return stats;
}

Result<SimStats> ClusterSimulator::RunClosed(uint64_t num_requests,
                                             size_t concurrency) {
  if (num_requests == 0 || concurrency == 0) {
    return Status::InvalidArgument("num_requests and concurrency must be > 0");
  }
  if (!config_.failures.empty()) {
    return Status::InvalidArgument(
        "failure injection is only supported in open-loop runs");
  }
  Rng rng(config_.seed);
  RunState state;
  state.nodes.assign(backends_.size(),
                     BackendNode(config_.servers_per_backend));
  state.alive.assign(backends_.size(), true);
  state.requests.resize(num_requests);

  uint64_t issued = 0;
  const uint64_t initial = std::min<uint64_t>(concurrency, num_requests);
  for (; issued < initial; ++issued) {
    Dispatch(&state, issued, SampleClass(&rng), 0.0);
  }

  while (!state.events.empty()) {
    const Event ev = state.events.top();
    state.events.pop();
    const double now = ev.time;
    state.nodes[ev.backend].FinishOne(ev.busy_seconds);
    if (ev.request_id != kBackgroundRequest &&
        state.Account(ev.request_id, now, /*lost=*/false) &&
        issued < num_requests) {
      Dispatch(&state, issued, SampleClass(&rng), now);
      ++issued;
    }
    StartReady(&state, ev.backend, now);
  }
  return Finish(state);
}

Result<SimStats> ClusterSimulator::RunOpen(double duration_seconds,
                                           double arrival_rate) {
  if (duration_seconds <= 0.0 || arrival_rate <= 0.0) {
    return Status::InvalidArgument("duration and arrival rate must be > 0");
  }
  Rng rng(config_.seed);
  RunState state;
  state.nodes.assign(backends_.size(),
                     BackendNode(config_.servers_per_backend));
  state.alive.assign(backends_.size(), true);

  // Pre-generate Poisson arrival times.
  std::vector<double> arrivals;
  double t = 0.0;
  while (true) {
    t += rng.NextExponential(1.0 / arrival_rate);
    if (t >= duration_seconds) break;
    arrivals.push_back(t);
  }
  state.requests.resize(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    state.events.push(Event{arrivals[i], Event::Kind::kArrival, 0, i, 0.0});
  }
  for (const BackendFailure& failure : config_.failures) {
    if (failure.backend >= backends_.size()) {
      return Status::InvalidArgument("failure backend index out of range");
    }
    state.events.push(
        Event{failure.time_seconds, Event::Kind::kFailure, failure.backend,
              0, 0.0});
  }

  while (!state.events.empty()) {
    const Event ev = state.events.top();
    state.events.pop();
    const double now = ev.time;
    if (ev.kind == Event::Kind::kArrival) {
      Dispatch(&state, ev.request_id, SampleClass(&rng), now);
      continue;
    }
    if (ev.kind == Event::Kind::kFailure) {
      if (!state.alive[ev.backend]) continue;
      state.alive[ev.backend] = false;
      // Queued work is lost; its logical requests fail.
      for (const BackendTask& task : state.nodes[ev.backend].DrainQueue()) {
        if (task.request_id != kBackgroundRequest) {
          state.Account(task.request_id, now, /*lost=*/true);
        }
      }
      continue;
    }
    if (!state.alive[ev.backend]) {
      // In-flight task on a crashed backend: the work is lost.
      if (ev.request_id != kBackgroundRequest) {
        state.Account(ev.request_id, now, /*lost=*/true);
      }
      continue;
    }
    state.nodes[ev.backend].FinishOne(ev.busy_seconds);
    if (ev.request_id != kBackgroundRequest) {
      state.Account(ev.request_id, now, /*lost=*/false);
    }
    StartReady(&state, ev.backend, now);
  }
  SimStats stats = Finish(state);
  // Open-loop throughput is measured over the arrival window.
  stats.duration_seconds = std::max(duration_seconds, state.last_completion);
  stats.throughput = stats.duration_seconds > 0.0
                         ? static_cast<double>(stats.completed_total()) /
                               stats.duration_seconds
                         : 0.0;
  return stats;
}

}  // namespace qcap
