// Simulator event calendar: a pooled, reserve-ahead event arena indexed by
// a 4-ary min-heap. The heap orders 24-byte {time, seq, slot} handles while
// the full event payload stays put in the arena, so sift operations move a
// third of the bytes a std::priority_queue<Event> would and popped slots are
// recycled through a LIFO free list instead of churning the allocator.
// Pop order is the exact (time, seq) deterministic total order the
// simulator's std::priority_queue used (seq values are unique, so the order
// is total and independent of heap internals).
//
// Push/Pop and the sifts are defined inline here: they run once per
// simulated task inside the simulator's drain loop, and keeping them
// header-inline lets that loop compile as one straight-line region (the
// out-of-line version costs a call per heap operation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/annotations.h"

namespace qcap {

/// One simulator event. POD payload stored in the EventQueue arena.
struct SimEvent {
  double time = 0.0;
  /// Tie-break: events at equal times apply in creation order, making the
  /// processing order (and with it retry ordering) fully deterministic.
  uint64_t seq = 0;
  enum class Kind { kCompletion, kArrival, kFault, kRetry } kind =
      Kind::kCompletion;
  size_t backend = 0;         // kCompletion.
  uint64_t request_id = 0;    // kCompletion / kRetry; for kFault the index
                              // into the run's fault list.
  uint64_t epoch = 0;         // kCompletion: backend epoch at task start.
  double busy_seconds = 0.0;  // kCompletion: actual (degrade-scaled) time.
  double base_service = 0.0;  // kCompletion: nominal service time.
};

/// \brief Min-ordered event calendar over a pooled arena.
///
/// Steady state allocates nothing: arena slots are recycled via the free
/// list and Clear() keeps all capacity, so a reused EventQueue reaches a
/// high-water capacity once and then runs allocation-free.
class EventQueue {
 public:
  /// Pre-grows arena and heap storage to \p capacity events.
  void Reserve(size_t capacity);

  /// Drops all events; keeps arena/heap capacity for reuse.
  void Clear();

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Key of the minimum event. Requires !empty(). Used to merge this queue
  /// against the ServerCalendar by (time, seq) without popping.
  double top_time() const { return heap_[0].time; }
  uint64_t top_seq() const { return heap_[0].seq; }

  // qcap-lint: hot-path begin
  void Push(const SimEvent& ev) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      arena_[slot] = ev;
    } else {
      slot = static_cast<uint32_t>(arena_.size());
      // qcap-lint: allow(hot-path-growth) -- reserve-ahead arena: grows to the in-flight high-water mark once, then slots recycle through free_
      arena_.push_back(ev);
    }
    // qcap-lint: allow(hot-path-growth) -- heap storage reaches steady-state capacity with the arena; no per-event reallocation after warm-up
    heap_.push_back(HeapEntry{ev.time, ev.seq, slot});
    SiftUp(heap_.size() - 1);
  }

  /// Copies the minimum event (by (time, seq)) into \p *out and removes it.
  /// Requires !empty().
  void Pop(SimEvent* out) {
    const HeapEntry top = heap_[0];
    *out = arena_[top.slot];
    // qcap-lint: allow(hot-path-growth) -- free-list push reuses capacity reserved alongside the arena
    free_.push_back(top.slot);
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      SiftDown(0);
    }
  }
  // qcap-lint: hot-path end

 private:
  /// Heap handle: the comparison key plus the arena slot of the payload.
  struct HeapEntry {
    double time;
    uint64_t seq;
    uint32_t slot;
  };
  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // qcap-lint: hot-path begin
  void SiftUp(size_t i) {
    const HeapEntry entry = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!Before(entry, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = entry;
  }

  void SiftDown(size_t i) {
    const HeapEntry entry = heap_[i];
    const size_t n = heap_.size();
    while (true) {
      const size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      size_t best = first_child;
      const size_t last_child =
          first_child + kArity < n ? first_child + kArity : n;
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (Before(heap_[c], heap_[best])) best = c;
      }
      if (!Before(heap_[best], entry)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = entry;
  }
  // qcap-lint: hot-path end

  /// Heap arity: 4 keeps the tree shallow and the child scan within one
  /// cache line of HeapEntry values.
  static constexpr size_t kArity = 4;

  // The calendar belongs to one simulator instance; the simulator's drain
  // loop is strictly single-threaded (determinism is the whole point), so
  // the pools are thread-confined rather than locked.
  QCAP_THREAD_CONFINED("owning Simulator's drain loop")
  std::vector<SimEvent> arena_;
  QCAP_THREAD_CONFINED("owning Simulator's drain loop")
  std::vector<uint32_t> free_;  // LIFO recycled arena slots.
  QCAP_THREAD_CONFINED("owning Simulator's drain loop")
  std::vector<HeapEntry> heap_;
};

}  // namespace qcap
