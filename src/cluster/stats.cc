#include "cluster/stats.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace qcap {

double SimStats::BusyBalanceDeviation(
    const std::vector<double>& relative_loads) const {
  const size_t n = backend_busy_seconds.size();
  if (n == 0 || relative_loads.size() != n) return 0.0;
  std::vector<double> normalized(n);
  double sum = 0.0;
  for (size_t b = 0; b < n; ++b) {
    // A non-positive performance share is a degenerate input (ValidateBackends
    // rejects it); treat the backend as carrying no normalized load rather
    // than dividing to ±inf and poisoning the deviation with NaN.
    normalized[b] =
        relative_loads[b] > 0.0 ? backend_busy_seconds[b] / relative_loads[b]
                                : 0.0;
    sum += normalized[b];
  }
  const double avg = sum / static_cast<double>(n);
  if (avg <= 0.0) return 0.0;
  double max_dev = 0.0;
  for (double v : normalized) {
    max_dev = std::max(max_dev, std::abs(v - avg) / avg);
  }
  return max_dev;
}

std::string SimStats::ToString() const {
  std::string out =
      "throughput=" + FormatDouble(throughput, 2) + " q/s, completed=" +
      std::to_string(completed_total()) + " (" +
      std::to_string(completed_reads) + "r/" +
      std::to_string(completed_updates) + "u), avg_resp=" +
      FormatDouble(avg_response_seconds * 1000.0, 1) + " ms, p95=" +
      FormatDouble(p95_response_seconds * 1000.0, 1) + " ms, duration=" +
      FormatDouble(duration_seconds, 1) + " s";
  if (failed_requests > 0 || rejected_requests > 0 || retried_requests > 0) {
    out += ", availability=" + FormatPercent(availability, 2) + " (failed=" +
           std::to_string(failed_requests) + ", rejected=" +
           std::to_string(rejected_requests) + ", retried=" +
           std::to_string(retried_requests) + ", redispatched=" +
           std::to_string(redispatched_requests) + ")";
  }
  return out;
}

}  // namespace qcap
