#include "cluster/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace qcap {

SearchProgress::SearchProgress()
    : best_scale_bits(
          std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity())) {}

void SearchProgress::RecordScale(double scale) {
  const uint64_t bits = std::bit_cast<uint64_t>(scale);
  uint64_t current = best_scale_bits.load(std::memory_order_relaxed);
  // Positive doubles compare the same as their bit patterns, so a CAS loop
  // on the raw bits implements an atomic min.
  while (scale < std::bit_cast<double>(current) &&
         !best_scale_bits.compare_exchange_weak(current, bits,
                                                std::memory_order_relaxed)) {
  }
}

double SearchProgress::best_scale() const {
  return std::bit_cast<double>(best_scale_bits.load(std::memory_order_relaxed));
}

void SearchProgress::Reset() {
  generations.store(0, std::memory_order_relaxed);
  evaluations.store(0, std::memory_order_relaxed);
  improvements.store(0, std::memory_order_relaxed);
  migrations.store(0, std::memory_order_relaxed);
  best_scale_bits.store(
      std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
}

std::string SearchProgress::ToString() const {
  const double scale = best_scale();
  return "generations=" + std::to_string(generations.load()) +
         ", evaluations=" + std::to_string(evaluations.load()) +
         ", improvements=" + std::to_string(improvements.load()) +
         ", migrations=" + std::to_string(migrations.load()) +
         ", best_scale=" +
         (std::isinf(scale) ? std::string("inf") : FormatDouble(scale, 4));
}

double ResponseAccumulator::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  const size_t n = sorted.size();
  const double clamped = std::min(std::max(p, 0.0), 1.0);
  size_t rank = static_cast<size_t>(std::ceil(clamped * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  std::nth_element(sorted.begin(), sorted.begin() + (rank - 1), sorted.end());
  return sorted[rank - 1];
}

double SimStats::BusyBalanceDeviation(
    const std::vector<double>& relative_loads) const {
  const size_t n = backend_busy_seconds.size();
  if (n == 0 || relative_loads.size() != n) return 0.0;
  std::vector<double> normalized(n);
  double sum = 0.0;
  for (size_t b = 0; b < n; ++b) {
    normalized[b] = backend_busy_seconds[b] / relative_loads[b];
    sum += normalized[b];
  }
  const double avg = sum / static_cast<double>(n);
  if (avg <= 0.0) return 0.0;
  double max_dev = 0.0;
  for (double v : normalized) {
    max_dev = std::max(max_dev, std::abs(v - avg) / avg);
  }
  return max_dev;
}

std::string SimStats::ToString() const {
  std::string out =
      "throughput=" + FormatDouble(throughput, 2) + " q/s, completed=" +
      std::to_string(completed_total()) + " (" +
      std::to_string(completed_reads) + "r/" +
      std::to_string(completed_updates) + "u), avg_resp=" +
      FormatDouble(avg_response_seconds * 1000.0, 1) + " ms, p95=" +
      FormatDouble(p95_response_seconds * 1000.0, 1) + " ms, duration=" +
      FormatDouble(duration_seconds, 1) + " s";
  if (failed_requests > 0 || rejected_requests > 0 || retried_requests > 0) {
    out += ", availability=" + FormatPercent(availability, 2) + " (failed=" +
           std::to_string(failed_requests) + ", rejected=" +
           std::to_string(rejected_requests) + ", retried=" +
           std::to_string(retried_requests) + ", redispatched=" +
           std::to_string(redispatched_requests) + ")";
  }
  return out;
}

}  // namespace qcap
