#include "cluster/backend_node.h"

#include <algorithm>

namespace qcap {

bool BackendNode::CanStart(double now) const {
  if (queue_.empty()) return false;
  for (double t : server_free_at_) {
    if (t <= now) return true;
  }
  return false;
}

bool BackendNode::StartNext(double now, BackendTask* task,
                            double* completion_time, double service_scale) {
  if (queue_.empty()) return false;
  // Earliest-free server.
  size_t best = 0;
  for (size_t i = 1; i < server_free_at_.size(); ++i) {
    if (server_free_at_[i] < server_free_at_[best]) best = i;
  }
  const double start = std::max(now, server_free_at_[best]);
  *task = queue_.front();
  queue_.pop_front();
  *completion_time = start + task->service_seconds * service_scale;
  server_free_at_[best] = *completion_time;
  ++in_service_;
  return true;
}

std::vector<BackendTask> BackendNode::DrainQueue() {
  std::vector<BackendTask> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

std::vector<BackendTask> BackendNode::Crash() {
  std::vector<BackendTask> out = DrainQueue();
  in_service_ = 0;
  std::fill(server_free_at_.begin(), server_free_at_.end(), 0.0);
  return out;
}

void BackendNode::FinishOne(double busy_seconds) {
  if (in_service_ > 0) --in_service_;
  busy_seconds_ += busy_seconds;
  ++completed_tasks_;
}

double BackendNode::NextFreeTime() const {
  double best = server_free_at_[0];
  for (double t : server_free_at_) best = std::min(best, t);
  return best;
}

}  // namespace qcap
