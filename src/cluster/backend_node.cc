#include "cluster/backend_node.h"

#include <algorithm>

namespace qcap {

void BackendNode::Reset(size_t servers) {
  head_ = 0;
  count_ = 0;
  if (server_free_at_.size() == servers) {
    std::fill(server_free_at_.begin(), server_free_at_.end(), 0.0);
  } else {
    server_free_at_.assign(servers, 0.0);
  }
  free_min_ = 0.0;
  in_service_ = 0;
  busy_seconds_ = 0.0;
  completed_tasks_ = 0;
}

void BackendNode::Grow() {
  const size_t old_size = ring_.size();
  std::vector<BackendTask> bigger(std::max<size_t>(old_size * 2, 8));
  for (size_t i = 0; i < count_; ++i) {
    bigger[i] = ring_[(head_ + i) & mask_];
  }
  ring_.swap(bigger);
  mask_ = ring_.size() - 1;
  head_ = 0;
}

void BackendNode::DrainQueueInto(std::vector<BackendTask>* out) {
  for (size_t i = 0; i < count_; ++i) {
    out->push_back(ring_[(head_ + i) & mask_]);
  }
  head_ = 0;
  count_ = 0;
}

void BackendNode::Crash(std::vector<BackendTask>* out) {
  DrainQueueInto(out);
  in_service_ = 0;
  std::fill(server_free_at_.begin(), server_free_at_.end(), 0.0);
  free_min_ = 0.0;
}

double BackendNode::NextFreeTime() const {
  double best = server_free_at_[0];
  for (double t : server_free_at_) best = std::min(best, t);
  return best;
}

}  // namespace qcap
