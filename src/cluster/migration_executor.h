// Staged live-migration executor: materializes a Hungarian-planned
// transition (physical/physical_allocator.h) while the old placements keep
// serving, then cuts routing over atomically.
//
// The executor models the three stages every live re-allocation goes
// through in the adaptive control loop (autonomic/control_loop.h):
//
//   COPY     ETL streams the missing fragments onto their destinations.
//            Foreground queries still route on the OLD allocation; the
//            serving nodes that donate or receive ETL data run degraded
//            (FaultEvent::kDegrade interference windows) because the copy
//            competes with query execution for I/O and CPU.
//   CATCHUP  Each fragment's new replica drains the update backlog that
//            accumulated while it was copying. Still serving OLD — a
//            replica becomes eligible only once it has caught up, which is
//            what makes the final cut-over safe.
//   SWAP     At swap_seconds() every new replica is caught up and routing
//            flips to the NEW allocation in one atomic step (simulator:
//            next slice runs on the target; serving layer:
//            net::Dispatcher::SwapRouting). No queries are dropped or
//            misrouted across the boundary (pinned by control_loop_test).
//
// Everything is derived arithmetically from the TransitionPlan — the
// executor never reads a clock or draws randomness, so a control loop
// built on it replays bit-identically.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "model/allocation.h"
#include "model/backend.h"
#include "physical/physical_allocator.h"

namespace qcap {

/// Migration stages; phase boundaries come from PhaseAt().
enum class MigrationPhase { kIdle, kCopy, kCatchup, kDone };

const char* ToString(MigrationPhase phase);

/// Tuning knobs for the staged execution.
struct MigrationOptions {
  /// Service-time multiplier applied to serving nodes participating in the
  /// ETL (donors and co-located destinations) during COPY — the modeled
  /// interference of copy traffic with foreground queries. 1 disables.
  double etl_interference = 1.3;
  /// The plan's ETL duration assumes dedicated bandwidth; copying while
  /// serving stretches it by this factor (>= 1).
  double live_copy_slowdown = 1.25;
  /// CATCHUP length as a fraction of the (stretched) copy time — the
  /// update backlog grows with how long the copy ran.
  double catchup_fraction = 0.1;
  /// Floor for the catch-up window, seconds.
  double min_catchup_seconds = 0.5;
};

/// One ETL interference window on a *serving* (old-cluster) node.
struct InterferenceWindow {
  size_t backend = 0;        ///< Old-allocation node index.
  double begin_seconds = 0;  ///< Window start (absolute control-loop time).
  double end_seconds = 0;    ///< Window end.
  double factor = 1.0;       ///< Degrade factor while the window is open.
};

/// \brief Executes one staged migration; reusable after Reset()/swap.
class MigrationExecutor {
 public:
  /// Starts a migration toward \p target at \p start_seconds following
  /// \p plan. \p target_backends are the specs of the target cluster.
  /// Fails if a migration is already active or the options are invalid.
  Status Begin(Allocation target, std::vector<BackendSpec> target_backends,
               const TransitionPlan& plan, double start_seconds,
               const MigrationOptions& options);

  /// True between Begin() and TakeTarget().
  bool active() const { return active_; }

  MigrationPhase PhaseAt(double time_seconds) const;

  double start_seconds() const { return start_; }
  /// COPY → CATCHUP boundary: every destination finished receiving bytes.
  double copy_end_seconds() const { return copy_end_; }
  /// The atomic routing cut-over: every new replica is caught up.
  double swap_seconds() const { return swap_; }
  /// Per-target-backend instant its last fragment replica is caught up
  /// (<= swap_seconds(); the swap waits for the slowest). Backends that
  /// receive nothing are ready at start_seconds().
  const std::vector<double>& backend_ready_seconds() const { return ready_; }

  double moved_bytes() const { return moved_bytes_; }
  /// Total ETL wall-clock: swap_seconds() - start_seconds().
  double etl_seconds() const { return swap_ - start_; }

  /// ETL interference windows (degrade factor + absolute time range) for
  /// serving old-cluster nodes, clipped to [window_begin, window_end).
  /// Empty when the options disable interference or nothing overlaps.
  std::vector<InterferenceWindow> InterferenceIn(double window_begin,
                                                 double window_end) const;

  /// Old-cluster node indices whose service degrades during COPY (sorted):
  /// the physical nodes that keep serving while donating to or hosting an
  /// ETL destination.
  const std::vector<size_t>& participants() const { return participants_; }

  /// Completes the migration: returns the target allocation and marks the
  /// executor idle. Callers swap their routing to the returned allocation
  /// (this is the simulator-side mirror of Dispatcher::SwapRouting).
  Allocation TakeTarget();
  const Allocation& target() const { return target_; }
  const std::vector<BackendSpec>& target_backends() const {
    return target_backends_;
  }

  /// Abandons an in-flight migration (e.g. superseded by a self-heal
  /// re-plan after a mid-migration crash).
  void Abort();

 private:
  bool active_ = false;
  Allocation target_;
  std::vector<BackendSpec> target_backends_;
  MigrationOptions options_;
  double start_ = 0.0;
  double copy_end_ = 0.0;
  double swap_ = 0.0;
  double moved_bytes_ = 0.0;
  std::vector<double> ready_;
  std::vector<size_t> participants_;
};

}  // namespace qcap
