// Discrete-event simulation of the CDBS processing model (Section 2).
//
// Replaces the paper's physical 16-node PostgreSQL/MySQL cluster: queries
// are dispatched by the least-pending-first scheduler to per-backend FIFO
// queues, updates fan out per ROWA, and service times come from the engine
// cost model. Deterministic for a given seed, including the full failure/
// recovery lifecycle (FaultPlan crash/recover/degrade events and the
// retry/backoff re-dispatch of work stranded by a crash).
//
// The event core is built for throughput (docs/ARCHITECTURE.md, "Simulator
// event core"): a pooled 4-ary event calendar (EventQueue), an O(log B)
// least-pending dispatch index (PendingIndex), lazy Poisson arrival
// generation (memory O(in-flight), bit-identical to the eager generator),
// pooled request slots, and run scratch that is reused across runs so the
// drain loop allocates nothing in steady state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/fault_plan.h"
#include "cluster/scheduler.h"
#include "cluster/stats.h"
#include "common/random.h"
#include "exec/cost_model.h"
#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

class ThreadPool;

/// Update-synchronization protocol (Section 2 discusses ROWA; primary copy
/// and lazy replication are the alternatives the paper notes "could be
/// easily incorporated into our model and system").
enum class UpdatePropagation {
  /// Read-once/write-all: an update completes when every replica has
  /// executed it synchronously.
  kRowa,
  /// The lowest-indexed replica is the primary; the client's update
  /// completes with the primary, the other replicas apply it
  /// asynchronously (same work, better latency).
  kPrimaryCopy,
  /// Primary copy plus batched application on the secondaries (group
  /// commit): replica apply work is discounted by lazy_apply_factor.
  kLazy,
};

/// Legacy single-crash injection, kept as sugar: every entry is merged
/// into the run's FaultPlan as a crash event. New code should build a
/// FaultPlan directly (SimulationConfig::fault_plan), which also supports
/// recover and degrade events.
struct BackendFailure {
  double time_seconds = 0.0;
  size_t backend = 0;
};

/// How the scheduler re-dispatches requests stranded by a backend crash.
/// Queued work is re-dispatched when the crash is processed (the scheduler
/// observes the node die); in-flight work is re-dispatched when its
/// expected completion passes without a response (timeout detection). Each
/// attempt adds an exponentially growing backoff delay. Bit-deterministic:
/// retries re-use the request's original class sample and draw nothing
/// from the RNG.
struct RetryPolicy {
  /// Maximum dispatch attempts per logical request, including the first.
  /// 1 disables retries (stranded work counts as failed, the pre-FaultPlan
  /// behaviour); 0 is invalid.
  size_t max_attempts = 3;
  /// Delay before the first re-dispatch, simulated as added latency.
  double base_backoff_seconds = 0.01;
  /// Multiplier applied to the backoff on each further attempt.
  double backoff_multiplier = 2.0;
};

/// Configuration of one simulated cluster.
struct SimulationConfig {
  engine::CostModelParams cost_params;
  /// Parallel connections per backend queue (Figure 3: "for each queue,
  /// multiple connections are opened").
  size_t servers_per_backend = 4;
  /// Seed for workload sampling.
  uint64_t seed = 1;
  /// How updates reach the replicas.
  UpdatePropagation propagation = UpdatePropagation::kRowa;
  /// Work discount for asynchronous batched application under kLazy.
  double lazy_apply_factor = 0.5;
  /// Crash/recover/degrade schedule (open- and closed-loop runs).
  FaultPlan fault_plan;
  /// Legacy crash list, merged into \ref fault_plan at run start.
  std::vector<BackendFailure> failures;
  /// Re-dispatch policy for crash-stranded requests.
  RetryPolicy retry;
  /// ROWA coordination overhead: each update's per-replica service time is
  /// inflated by this fraction per additional replica (ordering all
  /// replicas' application of the same update costs synchronization that
  /// grows with the fan-out). 0 disables the effect.
  double rowa_fanout_overhead = 0.0;
  /// When > 0, SimStats::timeline_completions counts completions per bin
  /// of this width (seconds) — used to plot throughput dips around faults.
  double timeline_bin_seconds = 0.0;
  /// When true, SimStats::class_completions counts completed logical
  /// requests per class (reads first, then updates) — the observed-mix
  /// signal the adaptive control loop's drift detector consumes.
  bool track_class_mix = false;
};

/// Options for RunClosedSweep/RunOpenSweep replication fans.
struct SweepOptions {
  /// Number of independent replications; replication i runs with seed
  /// config.seed + i * seed_stride. Must be >= 1.
  size_t repeat = 1;
  uint64_t seed_stride = 1;
  /// Worker threads to spawn when \ref pool is null; <= 1 runs serially.
  /// Results are bit-identical at any thread count (each replication is
  /// fully independent and lands in its submission-order slot).
  size_t threads = 0;
  /// Optional shared pool (not owned); overrides \ref threads.
  ThreadPool* pool = nullptr;
};

/// \brief Event-driven cluster simulator over a fixed allocation.
class ClusterSimulator {
 public:
  /// Builds a simulator; fails if the allocation leaves a class unservable.
  static Result<ClusterSimulator> Create(const Classification& cls,
                                         const Allocation& alloc,
                                         const std::vector<BackendSpec>& backends,
                                         const SimulationConfig& config);

  ClusterSimulator(ClusterSimulator&&) noexcept;
  ClusterSimulator& operator=(ClusterSimulator&&) = delete;
  ~ClusterSimulator();

  /// Closed-loop run: keeps \p concurrency logical requests outstanding
  /// until \p num_requests have been issued; measures saturated throughput
  /// (the paper's fixed-request-count test runs).
  Result<SimStats> RunClosed(uint64_t num_requests, size_t concurrency);
  /// As above, writing into \p *out (every field assigned). Reusing the
  /// same \p out lets repeated runs recycle its vector capacity — with the
  /// internal scratch reuse this makes steady-state runs allocation-free.
  Status RunClosed(uint64_t num_requests, size_t concurrency, SimStats* out);

  /// Open-loop run: Poisson arrivals at \p arrival_rate requests/second for
  /// \p duration_seconds; measures response times under a target load (the
  /// Section 5 elasticity experiments). Arrival events are generated
  /// lazily (one outstanding arrival, drawn on pop), so memory is
  /// O(in-flight requests), not O(total requests).
  Result<SimStats> RunOpen(double duration_seconds, double arrival_rate);
  /// As above, writing into \p *out (see the closed-loop overload).
  Status RunOpen(double duration_seconds, double arrival_rate, SimStats* out);

  /// Replication sweep: \p sweep.repeat independent closed-loop runs with
  /// seeds config.seed + i * seed_stride, fanned out on a ThreadPool.
  /// results[i] is bit-identical to a serial run at that seed, at any
  /// thread count.
  Result<std::vector<SimStats>> RunClosedSweep(uint64_t num_requests,
                                               size_t concurrency,
                                               const SweepOptions& sweep) const;
  /// Replication sweep of open-loop runs (see RunClosedSweep).
  Result<std::vector<SimStats>> RunOpenSweep(double duration_seconds,
                                             double arrival_rate,
                                             const SweepOptions& sweep) const;

  /// Reseeds workload sampling for subsequent runs. The only post-Create
  /// mutation: everything else about the configuration is fixed, which is
  /// what lets call sites cache and reuse simulators across runs.
  void set_seed(uint64_t seed) { config_.seed = seed; }
  uint64_t seed() const { return config_.seed; }

 private:
  ClusterSimulator(const Classification& cls, const Allocation& alloc,
                   const std::vector<BackendSpec>& backends,
                   const SimulationConfig& config, Scheduler scheduler);

  struct RunState;
  enum class DispatchOutcome { kDispatched, kRejected };

  /// Samples a class index in [0, reads+updates) by execution frequency.
  size_t SampleClass(Rng* rng) const;
  DispatchOutcome Dispatch(RunState* state, uint64_t request_id,
                           size_t class_index, double now) const;
  void StartReady(RunState* state, size_t backend, double now) const;
  /// A crash destroyed \p request_id's work on \p backend with base service
  /// time \p service_seconds: schedules a retry, accumulates replica lag,
  /// or fails the request per the retry policy. Returns true iff this
  /// reached a terminal state (failed, or an update completed on its
  /// surviving replicas).
  bool HandleLostWork(RunState* state, uint64_t request_id, size_t backend,
                      double service_seconds, double now) const;
  /// Retry-budget bookkeeping: schedules the next attempt or fails the
  /// request. Returns true iff the request failed terminally.
  bool ScheduleRetry(RunState* state, uint64_t request_id, double now) const;
  /// Applies one fault event; returns how many logical requests reached a
  /// terminal state as a direct consequence (crash-stranded work).
  size_t ApplyFault(RunState* state, const FaultEvent& fault, double now) const;
  /// Resets \p state and seeds it with nodes, the pending index, and the
  /// pre-merged fault schedule. Shared by both run modes.
  Status InitRun(RunState* state) const;
  /// Open loop: pushes the next lazy Poisson arrival event, or marks the
  /// stream exhausted once the drawn time passes the horizon.
  void ScheduleNextArrival(RunState* state) const;
  /// Drains the event queue; \p issue_next is invoked (closed loop) every
  /// time a logical request reaches a terminal state.
  template <typename IssueNext>
  void DrainEvents(RunState* state, Rng* rng, const IssueNext& issue_next) const;
  /// Writes run results into \p *out, assigning every SimStats field.
  void FinishInto(RunState* state, SimStats* out) const;

  Status RunClosedInto(RunState* state, uint64_t seed, uint64_t num_requests,
                       size_t concurrency, SimStats* out) const;
  Status RunOpenInto(RunState* state, uint64_t seed, double duration_seconds,
                     double arrival_rate, SimStats* out) const;
  /// Lazily-allocated scratch reused by the serial Run* entry points.
  RunState* Scratch();

  const Classification& cls_;
  const Allocation& alloc_;
  std::vector<BackendSpec> backends_;
  SimulationConfig config_;
  Scheduler scheduler_;
  /// service_[class][backend], reads first then updates.
  std::vector<std::vector<double>> service_;
  /// Row-major copy of service_ (stride = num backends): one indexed load
  /// per lookup on the dispatch fast path.
  std::vector<double> service_flat_;
  /// Sampling frequencies per class (reads first then updates).
  std::vector<double> frequency_;
  /// Sum of frequency_, hoisted for the per-request class draw.
  double frequency_total_ = 0.0;
  /// fault_plan + legacy failures, merged, validated and sorted once at
  /// construction (the schedule is per-config, not per-run).
  std::vector<FaultEvent> faults_;
  Status fault_status_;
  std::unique_ptr<RunState> scratch_;
};

}  // namespace qcap
