// Discrete-event simulation of the CDBS processing model (Section 2).
//
// Replaces the paper's physical 16-node PostgreSQL/MySQL cluster: queries
// are dispatched by the least-pending-first scheduler to per-backend FIFO
// queues, updates fan out per ROWA, and service times come from the engine
// cost model. Deterministic for a given seed.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/scheduler.h"
#include "cluster/stats.h"
#include "common/random.h"
#include "engine/cost_model.h"
#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

/// Update-synchronization protocol (Section 2 discusses ROWA; primary copy
/// and lazy replication are the alternatives the paper notes "could be
/// easily incorporated into our model and system").
enum class UpdatePropagation {
  /// Read-once/write-all: an update completes when every replica has
  /// executed it synchronously.
  kRowa,
  /// The lowest-indexed replica is the primary; the client's update
  /// completes with the primary, the other replicas apply it
  /// asynchronously (same work, better latency).
  kPrimaryCopy,
  /// Primary copy plus batched application on the secondaries (group
  /// commit): replica apply work is discounted by lazy_apply_factor.
  kLazy,
};

/// A backend crash injected into an open-loop run: at \p time_seconds the
/// backend stops, its queued and in-flight work is lost, and the scheduler
/// routes around it (requests whose class has no surviving capable backend
/// are rejected).
struct BackendFailure {
  double time_seconds = 0.0;
  size_t backend = 0;
};

/// Configuration of one simulated cluster.
struct SimulationConfig {
  engine::CostModelParams cost_params;
  /// Parallel connections per backend queue (Figure 3: "for each queue,
  /// multiple connections are opened").
  size_t servers_per_backend = 4;
  /// Seed for workload sampling.
  uint64_t seed = 1;
  /// How updates reach the replicas.
  UpdatePropagation propagation = UpdatePropagation::kRowa;
  /// Work discount for asynchronous batched application under kLazy.
  double lazy_apply_factor = 0.5;
  /// Crashes to inject (open-loop runs only).
  std::vector<BackendFailure> failures;
  /// ROWA coordination overhead: each update's per-replica service time is
  /// inflated by this fraction per additional replica (ordering all
  /// replicas' application of the same update costs synchronization that
  /// grows with the fan-out). 0 disables the effect.
  double rowa_fanout_overhead = 0.0;
};

/// \brief Event-driven cluster simulator over a fixed allocation.
class ClusterSimulator {
 public:
  /// Builds a simulator; fails if the allocation leaves a class unservable.
  static Result<ClusterSimulator> Create(const Classification& cls,
                                         const Allocation& alloc,
                                         const std::vector<BackendSpec>& backends,
                                         const SimulationConfig& config);

  /// Closed-loop run: keeps \p concurrency logical requests outstanding
  /// until \p num_requests have been issued; measures saturated throughput
  /// (the paper's fixed-request-count test runs).
  Result<SimStats> RunClosed(uint64_t num_requests, size_t concurrency);

  /// Open-loop run: Poisson arrivals at \p arrival_rate requests/second for
  /// \p duration_seconds; measures response times under a target load (the
  /// Section 5 elasticity experiments).
  Result<SimStats> RunOpen(double duration_seconds, double arrival_rate);

 private:
  ClusterSimulator(const Classification& cls, const Allocation& alloc,
                   const std::vector<BackendSpec>& backends,
                   const SimulationConfig& config, Scheduler scheduler);

  struct RunState;

  /// Samples a class index in [0, reads+updates) by execution frequency.
  size_t SampleClass(Rng* rng) const;
  void Dispatch(RunState* state, uint64_t request_id, size_t class_index,
                double now);
  void StartReady(RunState* state, size_t backend, double now);
  SimStats Finish(const RunState& state) const;

  const Classification& cls_;
  const Allocation& alloc_;
  std::vector<BackendSpec> backends_;
  SimulationConfig config_;
  Scheduler scheduler_;
  /// service_[class][backend], reads first then updates.
  std::vector<std::vector<double>> service_;
  /// Sampling frequencies per class (reads first then updates).
  std::vector<double> frequency_;
};

}  // namespace qcap
