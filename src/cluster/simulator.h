// Discrete-event simulation of the CDBS processing model (Section 2).
//
// Replaces the paper's physical 16-node PostgreSQL/MySQL cluster: queries
// are dispatched by the least-pending-first scheduler to per-backend FIFO
// queues, updates fan out per ROWA, and service times come from the engine
// cost model. Deterministic for a given seed, including the full failure/
// recovery lifecycle (FaultPlan crash/recover/degrade events and the
// retry/backoff re-dispatch of work stranded by a crash).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/fault_plan.h"
#include "cluster/scheduler.h"
#include "cluster/stats.h"
#include "common/random.h"
#include "engine/cost_model.h"
#include "model/allocation.h"
#include "model/backend.h"
#include "workload/query_class.h"

namespace qcap {

/// Update-synchronization protocol (Section 2 discusses ROWA; primary copy
/// and lazy replication are the alternatives the paper notes "could be
/// easily incorporated into our model and system").
enum class UpdatePropagation {
  /// Read-once/write-all: an update completes when every replica has
  /// executed it synchronously.
  kRowa,
  /// The lowest-indexed replica is the primary; the client's update
  /// completes with the primary, the other replicas apply it
  /// asynchronously (same work, better latency).
  kPrimaryCopy,
  /// Primary copy plus batched application on the secondaries (group
  /// commit): replica apply work is discounted by lazy_apply_factor.
  kLazy,
};

/// Legacy single-crash injection, kept as sugar: every entry is merged
/// into the run's FaultPlan as a crash event. New code should build a
/// FaultPlan directly (SimulationConfig::fault_plan), which also supports
/// recover and degrade events.
struct BackendFailure {
  double time_seconds = 0.0;
  size_t backend = 0;
};

/// How the scheduler re-dispatches requests stranded by a backend crash.
/// Queued work is re-dispatched when the crash is processed (the scheduler
/// observes the node die); in-flight work is re-dispatched when its
/// expected completion passes without a response (timeout detection). Each
/// attempt adds an exponentially growing backoff delay. Bit-deterministic:
/// retries re-use the request's original class sample and draw nothing
/// from the RNG.
struct RetryPolicy {
  /// Maximum dispatch attempts per logical request, including the first.
  /// 1 disables retries (stranded work counts as failed, the pre-FaultPlan
  /// behaviour); 0 is invalid.
  size_t max_attempts = 3;
  /// Delay before the first re-dispatch, simulated as added latency.
  double base_backoff_seconds = 0.01;
  /// Multiplier applied to the backoff on each further attempt.
  double backoff_multiplier = 2.0;
};

/// Configuration of one simulated cluster.
struct SimulationConfig {
  engine::CostModelParams cost_params;
  /// Parallel connections per backend queue (Figure 3: "for each queue,
  /// multiple connections are opened").
  size_t servers_per_backend = 4;
  /// Seed for workload sampling.
  uint64_t seed = 1;
  /// How updates reach the replicas.
  UpdatePropagation propagation = UpdatePropagation::kRowa;
  /// Work discount for asynchronous batched application under kLazy.
  double lazy_apply_factor = 0.5;
  /// Crash/recover/degrade schedule (open- and closed-loop runs).
  FaultPlan fault_plan;
  /// Legacy crash list, merged into \ref fault_plan at run start.
  std::vector<BackendFailure> failures;
  /// Re-dispatch policy for crash-stranded requests.
  RetryPolicy retry;
  /// ROWA coordination overhead: each update's per-replica service time is
  /// inflated by this fraction per additional replica (ordering all
  /// replicas' application of the same update costs synchronization that
  /// grows with the fan-out). 0 disables the effect.
  double rowa_fanout_overhead = 0.0;
  /// When > 0, SimStats::timeline_completions counts completions per bin
  /// of this width (seconds) — used to plot throughput dips around faults.
  double timeline_bin_seconds = 0.0;
};

/// \brief Event-driven cluster simulator over a fixed allocation.
class ClusterSimulator {
 public:
  /// Builds a simulator; fails if the allocation leaves a class unservable.
  static Result<ClusterSimulator> Create(const Classification& cls,
                                         const Allocation& alloc,
                                         const std::vector<BackendSpec>& backends,
                                         const SimulationConfig& config);

  /// Closed-loop run: keeps \p concurrency logical requests outstanding
  /// until \p num_requests have been issued; measures saturated throughput
  /// (the paper's fixed-request-count test runs).
  Result<SimStats> RunClosed(uint64_t num_requests, size_t concurrency);

  /// Open-loop run: Poisson arrivals at \p arrival_rate requests/second for
  /// \p duration_seconds; measures response times under a target load (the
  /// Section 5 elasticity experiments).
  Result<SimStats> RunOpen(double duration_seconds, double arrival_rate);

 private:
  ClusterSimulator(const Classification& cls, const Allocation& alloc,
                   const std::vector<BackendSpec>& backends,
                   const SimulationConfig& config, Scheduler scheduler);

  struct RunState;
  enum class DispatchOutcome { kDispatched, kRejected };

  /// Samples a class index in [0, reads+updates) by execution frequency.
  size_t SampleClass(Rng* rng) const;
  DispatchOutcome Dispatch(RunState* state, uint64_t request_id,
                           size_t class_index, double now);
  void StartReady(RunState* state, size_t backend, double now);
  /// A crash destroyed \p request_id's work on \p backend with base service
  /// time \p service_seconds: schedules a retry, accumulates replica lag,
  /// or fails the request per the retry policy. Returns true iff this
  /// reached a terminal state (failed, or an update completed on its
  /// surviving replicas).
  bool HandleLostWork(RunState* state, uint64_t request_id, size_t backend,
                      double service_seconds, double now);
  /// Retry-budget bookkeeping: schedules the next attempt or fails the
  /// request. Returns true iff the request failed terminally.
  bool ScheduleRetry(RunState* state, uint64_t request_id, double now);
  /// Applies one fault event; returns how many logical requests reached a
  /// terminal state as a direct consequence (crash-stranded work).
  size_t ApplyFault(RunState* state, const FaultEvent& fault, double now);
  /// Merges config_.failures into config_.fault_plan, validates, and seeds
  /// \p state with nodes/events. Shared by both run modes.
  Status InitRun(RunState* state);
  /// Drains the event queue; \p issue_next is invoked (closed loop) every
  /// time a logical request reaches a terminal state.
  template <typename IssueNext>
  void DrainEvents(RunState* state, Rng* rng, const IssueNext& issue_next);
  SimStats Finish(const RunState& state) const;

  const Classification& cls_;
  const Allocation& alloc_;
  std::vector<BackendSpec> backends_;
  SimulationConfig config_;
  Scheduler scheduler_;
  /// service_[class][backend], reads first then updates.
  std::vector<std::vector<double>> service_;
  /// Sampling frequencies per class (reads first then updates).
  std::vector<double> frequency_;
};

}  // namespace qcap
