// Dense two-phase primal simplex solver.
//
// Built from scratch because the optimal allocation of Appendix B is a
// linear/integer program and no external solver is assumed. Handles
// minimization problems with <=, >=, and = constraints over non-negative
// variables, using Bland's rule to guarantee termination.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace qcap {

/// Constraint relation.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: coeffs · x (rel) rhs.
struct LinearConstraint {
  std::vector<double> coeffs;  ///< Dense, length = num_vars (missing = 0).
  Relation rel = Relation::kLessEqual;
  double rhs = 0.0;
};

/// \brief A linear program: minimize objective · x subject to constraints,
/// x >= 0.
struct LinearProgram {
  size_t num_vars = 0;
  std::vector<double> objective;  ///< Dense, length num_vars; minimized.
  std::vector<LinearConstraint> constraints;

  /// Appends a constraint; coefficients shorter than num_vars are
  /// zero-extended.
  void AddConstraint(std::vector<double> coeffs, Relation rel, double rhs);
  /// Appends the single-variable constraint x[var] (rel) rhs.
  void AddVarBound(size_t var, Relation rel, double rhs);
};

/// Solver options.
struct SimplexOptions {
  size_t max_iterations = 200000;
  double tolerance = 1e-9;
};

/// Solution of an LP.
struct LpSolution {
  std::vector<double> x;
  double objective = 0.0;
};

/// Solves \p lp. Returns kInfeasible / kUnbounded / kResourceExhausted on
/// the corresponding failure.
Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options = {});

}  // namespace qcap
