// Branch-and-bound solver for mixed binary/linear programs, built on the
// two-phase simplex. Sufficient for the optimal-allocation MILP of
// Appendix B at the problem sizes the paper evaluates (<= 7 backends).
#pragma once

#include <vector>

#include "solver/simplex.h"

namespace qcap {

/// A mixed-integer LP: the embedded LP plus a list of variables restricted
/// to {0, 1}. (0 <= x <= 1 bounds are added automatically.)
struct MilpProblem {
  LinearProgram lp;
  std::vector<size_t> binary_vars;
  /// Optional branching priority per binary variable (parallel to
  /// binary_vars; empty = uniform). Higher priority classes are branched
  /// first; within a class the most fractional variable wins.
  std::vector<int> branch_priority;
};

/// Options for branch and bound.
struct MilpOptions {
  SimplexOptions simplex;
  /// Maximum number of branch-and-bound nodes to explore.
  size_t max_nodes = 100000;
  /// Integrality tolerance.
  double int_tolerance = 1e-6;
};

/// Solves \p problem to optimality by depth-first branch and bound with
/// best-bound pruning. Returns kInfeasible if no integral solution exists,
/// kResourceExhausted if the node limit is hit before proving optimality
/// (in which case no incumbent is returned even if one was found —
/// callers needing anytime behaviour should raise max_nodes).
Result<LpSolution> SolveMilp(const MilpProblem& problem,
                             const MilpOptions& options = {});

}  // namespace qcap
