#include "solver/hungarian.h"

#include <limits>

namespace qcap {

Result<AssignmentResult> SolveAssignment(
    const std::vector<std::vector<double>>& cost) {
  const size_t n = cost.size();
  if (n == 0) {
    return Status::InvalidArgument("empty cost matrix");
  }
  for (const auto& row : cost) {
    if (row.size() != n) {
      return Status::InvalidArgument("cost matrix is not square");
    }
  }

  // O(n^3) Hungarian algorithm with row/column potentials. Uses 1-based
  // auxiliary arrays; p[j] = row matched to column j.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.assignment.assign(n, 0);
  for (size_t j = 1; j <= n; ++j) {
    result.assignment[p[j] - 1] = j - 1;
  }
  for (size_t i = 0; i < n; ++i) {
    result.total_cost += cost[i][result.assignment[i]];
  }
  return result;
}

}  // namespace qcap
