#include "solver/milp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

namespace qcap {

namespace {

struct Node {
  /// Fixings: var -> 0 or 1. Applied as equality constraints.
  std::vector<std::pair<size_t, int>> fixings;
  double bound = -std::numeric_limits<double>::infinity();
};

}  // namespace

Result<LpSolution> SolveMilp(const MilpProblem& problem,
                             const MilpOptions& options) {
  // Base LP with 0 <= x <= 1 for binaries.
  LinearProgram base = problem.lp;
  for (size_t v : problem.binary_vars) {
    if (v >= base.num_vars) {
      return Status::InvalidArgument("binary var index out of range");
    }
    base.AddVarBound(v, Relation::kLessEqual, 1.0);
  }

  std::optional<LpSolution> incumbent;
  double incumbent_obj = std::numeric_limits<double>::infinity();

  std::vector<Node> stack;
  stack.push_back(Node{});
  size_t explored = 0;

  while (!stack.empty()) {
    if (++explored > options.max_nodes) {
      return Status::ResourceExhausted("branch-and-bound node limit reached");
    }
    Node node = std::move(stack.back());
    stack.pop_back();

    // Build and solve this node's relaxation.
    LinearProgram lp = base;
    for (const auto& [var, value] : node.fixings) {
      lp.AddVarBound(var, Relation::kEqual, static_cast<double>(value));
    }
    auto res = SolveLp(lp, options.simplex);
    if (!res.ok()) {
      if (res.status().IsInfeasible()) continue;  // Prune.
#ifdef QCAP_MILP_TRACE
      if (res.status().IsUnbounded()) {
        std::fprintf(stderr, "unbounded node, fixings:");
        for (auto& [var, val] : node.fixings) {
          std::fprintf(stderr, " x%zu=%d", var, val);
        }
        std::fprintf(stderr, "\n");
      }
#endif
      return res.status();
    }
    const LpSolution& relax = res.value();
    if (relax.objective >= incumbent_obj - options.int_tolerance) {
      continue;  // Bound: cannot improve the incumbent.
    }

    // Branching variable: highest priority class first, most fractional
    // within it.
    int branch_var = -1;
    int best_priority = std::numeric_limits<int>::min();
    double most_fractional = options.int_tolerance;
    const bool has_priority =
        problem.branch_priority.size() == problem.binary_vars.size();
    for (size_t idx = 0; idx < problem.binary_vars.size(); ++idx) {
      const size_t v = problem.binary_vars[idx];
      const double x = relax.x[v];
      const double frac = std::min(x - std::floor(x), std::ceil(x) - x);
      if (frac <= options.int_tolerance) continue;
      const int priority = has_priority ? problem.branch_priority[idx] : 0;
      if (priority > best_priority ||
          (priority == best_priority && frac > most_fractional)) {
        best_priority = priority;
        most_fractional = frac;
        branch_var = static_cast<int>(v);
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      if (relax.objective < incumbent_obj) {
        incumbent_obj = relax.objective;
        incumbent = relax;
        // Round binaries exactly.
        for (size_t v : problem.binary_vars) {
          incumbent->x[v] = std::round(incumbent->x[v]);
        }
      }
      continue;
    }

    // Depth-first: explore the "round to nearest" branch first.
    const double xval = relax.x[static_cast<size_t>(branch_var)];
    const int near = xval >= 0.5 ? 1 : 0;
    Node far_node = node;
    far_node.fixings.emplace_back(static_cast<size_t>(branch_var), 1 - near);
    Node near_node = std::move(node);
    near_node.fixings.emplace_back(static_cast<size_t>(branch_var), near);
    stack.push_back(std::move(far_node));
    stack.push_back(std::move(near_node));
  }

  if (!incumbent) {
    return Status::Infeasible("no integral solution exists");
  }
  return *incumbent;
}

}  // namespace qcap
