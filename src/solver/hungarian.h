// Hungarian algorithm (Kuhn-Munkres) for the assignment problem.
//
// Used by the physical allocator (Section 3.4) to find the cost-minimal
// perfect matching between the backends of a newly computed allocation and
// the currently installed allocation, in O(n^3).
#pragma once

#include <vector>

#include "common/status.h"

namespace qcap {

/// Result of an assignment: `assignment[row] = column` plus the total cost.
struct AssignmentResult {
  std::vector<size_t> assignment;
  double total_cost = 0.0;
};

/// Solves the min-cost perfect assignment for the square \p cost matrix
/// (cost[i][j] = cost of assigning row i to column j). Fails if the matrix
/// is empty or not square.
Result<AssignmentResult> SolveAssignment(
    const std::vector<std::vector<double>>& cost);

}  // namespace qcap
