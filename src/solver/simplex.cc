#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qcap {

void LinearProgram::AddConstraint(std::vector<double> coeffs, Relation rel,
                                  double rhs) {
  coeffs.resize(num_vars, 0.0);
  constraints.push_back(LinearConstraint{std::move(coeffs), rel, rhs});
}

void LinearProgram::AddVarBound(size_t var, Relation rel, double rhs) {
  std::vector<double> coeffs(num_vars, 0.0);
  coeffs[var] = 1.0;
  constraints.push_back(LinearConstraint{std::move(coeffs), rel, rhs});
}

namespace {

/// Dense simplex tableau: rows are constraints, the last row is the
/// objective (reduced costs), the last column is the RHS.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), a_((rows + 1) * (cols + 1), 0.0),
        basis_(rows, -1) {}

  double& at(size_t r, size_t c) { return a_[r * (cols_ + 1) + c]; }
  double at(size_t r, size_t c) const { return a_[r * (cols_ + 1) + c]; }
  double& rhs(size_t r) { return at(r, cols_); }
  double& obj(size_t c) { return at(rows_, c); }
  double obj_value() const { return a_[rows_ * (cols_ + 1) + cols_]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  int basis(size_t r) const { return basis_[r]; }
  void set_basis(size_t r, int var) { basis_[r] = var; }

  /// Gauss-Jordan pivot on (prow, pcol); pcol enters the basis.
  void Pivot(size_t prow, size_t pcol) {
    const double pivot = at(prow, pcol);
    const double inv = 1.0 / pivot;
    for (size_t c = 0; c <= cols_; ++c) at(prow, c) *= inv;
    at(prow, pcol) = 1.0;  // Exact.
    for (size_t r = 0; r <= rows_; ++r) {
      if (r == prow) continue;
      const double factor = at(r, pcol);
      if (factor == 0.0) continue;
      for (size_t c = 0; c <= cols_; ++c) {
        at(r, c) -= factor * at(prow, c);
      }
      at(r, pcol) = 0.0;  // Exact.
    }
    basis_[prow] = static_cast<int>(pcol);
  }

 private:
  size_t rows_, cols_;
  std::vector<double> a_;
  std::vector<int> basis_;
};

enum class IterateResult { kOptimal, kUnbounded, kIterLimit };

/// Runs simplex iterations until optimality. Uses Dantzig's rule and falls
/// back to Bland's rule (guaranteed anti-cycling) after `bland_after`
/// iterations.
IterateResult Iterate(Tableau* t, const SimplexOptions& opts,
                      size_t* iterations, const std::vector<bool>& usable) {
  const size_t bland_after = opts.max_iterations / 2;
  while (*iterations < opts.max_iterations) {
    // Entering variable.
    int pcol = -1;
    if (*iterations < bland_after) {
      double best = -opts.tolerance;
      for (size_t c = 0; c < t->cols(); ++c) {
        if (!usable[c]) continue;
        if (t->obj(c) < best) {
          best = t->obj(c);
          pcol = static_cast<int>(c);
        }
      }
    } else {
      for (size_t c = 0; c < t->cols(); ++c) {
        if (usable[c] && t->obj(c) < -opts.tolerance) {
          pcol = static_cast<int>(c);
          break;
        }
      }
    }
    if (pcol < 0) return IterateResult::kOptimal;

    // Leaving variable: minimum ratio test, Bland tie-break.
    int prow = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < t->rows(); ++r) {
      const double coef = t->at(r, static_cast<size_t>(pcol));
      if (coef > opts.tolerance) {
        const double ratio = t->rhs(r) / coef;
        if (ratio < best_ratio - opts.tolerance ||
            (ratio < best_ratio + opts.tolerance && prow >= 0 &&
             t->basis(r) < t->basis(static_cast<size_t>(prow)))) {
          best_ratio = ratio;
          prow = static_cast<int>(r);
        }
      }
    }
    if (prow < 0) return IterateResult::kUnbounded;

    t->Pivot(static_cast<size_t>(prow), static_cast<size_t>(pcol));
    ++*iterations;
  }
  return IterateResult::kIterLimit;
}

}  // namespace

Result<LpSolution> SolveLp(const LinearProgram& lp, const SimplexOptions& opts) {
  if (lp.num_vars == 0) {
    return Status::InvalidArgument("LP has no variables");
  }
  if (lp.objective.size() != lp.num_vars) {
    return Status::InvalidArgument("objective length != num_vars");
  }
  for (const auto& c : lp.constraints) {
    if (c.coeffs.size() != lp.num_vars) {
      return Status::InvalidArgument("constraint length != num_vars");
    }
  }

  const size_t m = lp.constraints.size();
  const size_t n = lp.num_vars;

  // Count slack/surplus and artificial columns. Constraints are normalized
  // to non-negative RHS first.
  size_t num_slack = 0;
  size_t num_artificial = 0;
  std::vector<LinearConstraint> cons = lp.constraints;
  for (auto& c : cons) {
    if (c.rhs < 0.0) {
      for (auto& v : c.coeffs) v = -v;
      c.rhs = -c.rhs;
      if (c.rel == Relation::kLessEqual) {
        c.rel = Relation::kGreaterEqual;
      } else if (c.rel == Relation::kGreaterEqual) {
        c.rel = Relation::kLessEqual;
      }
    }
    if (c.rel == Relation::kLessEqual) {
      ++num_slack;
      // Slack is a valid initial basic variable; no artificial needed.
    } else if (c.rel == Relation::kGreaterEqual) {
      ++num_slack;  // Surplus.
      ++num_artificial;
    } else {
      ++num_artificial;
    }
  }

  const size_t total = n + num_slack + num_artificial;
  Tableau t(m, total);

  size_t slack_cursor = n;
  size_t art_cursor = n + num_slack;
  const size_t art_begin = n + num_slack;

  for (size_t r = 0; r < m; ++r) {
    const auto& c = cons[r];
    for (size_t j = 0; j < n; ++j) t.at(r, j) = c.coeffs[j];
    t.rhs(r) = c.rhs;
    if (c.rel == Relation::kLessEqual) {
      t.at(r, slack_cursor) = 1.0;
      t.set_basis(r, static_cast<int>(slack_cursor));
      ++slack_cursor;
    } else if (c.rel == Relation::kGreaterEqual) {
      t.at(r, slack_cursor) = -1.0;
      ++slack_cursor;
      t.at(r, art_cursor) = 1.0;
      t.set_basis(r, static_cast<int>(art_cursor));
      ++art_cursor;
    } else {
      t.at(r, art_cursor) = 1.0;
      t.set_basis(r, static_cast<int>(art_cursor));
      ++art_cursor;
    }
  }

  size_t iterations = 0;
  std::vector<bool> usable(total, true);

  // Phase 1: minimize the sum of artificial variables.
  if (num_artificial > 0) {
    for (size_t c = 0; c < total; ++c) t.obj(c) = 0.0;
    for (size_t c = art_begin; c < total; ++c) t.obj(c) = 1.0;
    t.obj(total) = 0.0;
    // Price out the artificial basis (reduced costs of basic vars must be 0).
    for (size_t r = 0; r < m; ++r) {
      const int bv = t.basis(r);
      if (bv >= static_cast<int>(art_begin)) {
        for (size_t c = 0; c <= total; ++c) {
          t.obj(c) -= t.at(r, c);
        }
      }
    }
    IterateResult res = Iterate(&t, opts, &iterations, usable);
    if (res == IterateResult::kIterLimit) {
      return Status::ResourceExhausted("simplex phase 1 iteration limit");
    }
    // Phase-1 objective value is -obj_value (tableau stores negated).
    const double infeasibility = -t.obj_value();
    if (std::abs(infeasibility) > 1e-6) {
      return Status::Infeasible("LP infeasible (phase-1 objective " +
                                std::to_string(infeasibility) + ")");
    }
    // Drive remaining artificial variables out of the basis.
    for (size_t r = 0; r < m; ++r) {
      if (t.basis(r) >= static_cast<int>(art_begin)) {
        bool pivoted = false;
        for (size_t c = 0; c < art_begin; ++c) {
          if (std::abs(t.at(r, c)) > 1e-7) {
            t.Pivot(r, c);
            pivoted = true;
            break;
          }
        }
        if (!pivoted) {
          // Redundant row; the artificial stays basic at value 0, which is
          // harmless as long as its column can never re-enter.
        }
      }
    }
    for (size_t c = art_begin; c < total; ++c) usable[c] = false;
  }

  // Phase 2: minimize the true objective.
  for (size_t c = 0; c <= total; ++c) t.obj(c) = 0.0;
  for (size_t j = 0; j < n; ++j) t.obj(j) = lp.objective[j];
  for (size_t r = 0; r < m; ++r) {
    const int bv = t.basis(r);
    if (bv >= 0 && bv < static_cast<int>(n) && lp.objective[bv] != 0.0) {
      const double cb = lp.objective[bv];
      for (size_t c = 0; c <= total; ++c) {
        t.obj(c) -= cb * t.at(r, c);
      }
    }
  }
  IterateResult res = Iterate(&t, opts, &iterations, usable);
  if (res == IterateResult::kIterLimit) {
    return Status::ResourceExhausted("simplex phase 2 iteration limit");
  }
  if (res == IterateResult::kUnbounded) {
    return Status::Unbounded("LP is unbounded");
  }

  LpSolution sol;
  sol.x.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    const int bv = t.basis(r);
    if (bv >= 0 && bv < static_cast<int>(n)) {
      sol.x[static_cast<size_t>(bv)] = t.rhs(r);
    }
  }
  sol.objective = -t.obj_value();
  return sol;
}

}  // namespace qcap
