// Umbrella header for the QCAP library: query-centric partitioning and
// allocation for partially replicated database systems (Rabl & Jacobsen,
// SIGMOD 2017).
//
// Typical flow:
//   engine::Catalog  – describe the schema          (engine/catalog.h)
//   CostModel / CostEstimator – price query classes (exec/*.h)
//   QueryJournal     – record the query history     (workload/journal.h)
//   SqlParser        – build queries from SQL text  (workload/sql_parser.h)
//   Classifier       – queries -> weighted classes  (workload/classifier.h)
//   Allocator        – classes -> partial replication (alloc/*.h)
//   ValidateAllocation / metrics                    (model/*.h)
//   PhysicalAllocator – materialize with minimal movement (physical/*.h)
//   ClusterSimulator / Controller – run it          (cluster/*.h)
#pragma once

#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

#include "engine/catalog.h"
#include "engine/datagen.h"
#include "engine/schema_io.h"
#include "engine/table.h"
#include "engine/types.h"

#include "workload/classifier.h"
#include "workload/fragment.h"
#include "workload/journal.h"
#include "workload/journal_io.h"
#include "workload/query.h"
#include "workload/query_class.h"
#include "workload/sql_parser.h"

#include "model/allocation.h"
#include "model/backend.h"
#include "model/metrics.h"
#include "model/json_export.h"
#include "model/report.h"
#include "model/validation.h"

#include "solver/hungarian.h"
#include "solver/milp.h"
#include "solver/simplex.h"

#include "alloc/advisor.h"
#include "alloc/allocator.h"
#include "alloc/full_replication.h"
#include "alloc/greedy.h"
#include "alloc/ksafety.h"
#include "alloc/memetic.h"
#include "alloc/optimal.h"
#include "alloc/random_allocator.h"
#include "alloc/robustness.h"

#include "physical/etl_cost.h"
#include "physical/physical_allocator.h"
#include "physical/scaling.h"

#include "exec/cost_estimator.h"
#include "exec/cost_model.h"
#include "exec/executor.h"

#include "cluster/backend_node.h"
#include "cluster/controller.h"
#include "cluster/fault_plan.h"
#include "cluster/scheduler.h"
#include "cluster/simulator.h"
#include "cluster/stats.h"

#include "autonomic/scaler.h"
#include "autonomic/segmentation.h"
