#include "workloads/timeseries.h"

#include <cassert>

namespace qcap::workloads {

using engine::ColumnDef;
using engine::ColumnType;
using engine::TableDef;

namespace {

ColumnDef Col(const char* name, ColumnType type, uint32_t width = 0,
              bool pk = false) {
  return ColumnDef{name, type, width, pk};
}

}  // namespace

engine::Catalog TimeSeriesCatalog(double scale_factor) {
  engine::Catalog catalog;
  auto add = [&](TableDef def) {
    Status st = catalog.AddTable(std::move(def));
    assert(st.ok());
    (void)st;
  };
  add(TableDef{"events",
               {Col("e_id", ColumnType::kInt64, 0, true),
                Col("e_sensor", ColumnType::kInt64),
                Col("e_time", ColumnType::kDate),
                Col("e_value", ColumnType::kDecimal),
                Col("e_status", ColumnType::kChar, 8),
                Col("e_payload", ColumnType::kVarchar, 60)},
               8000000});
  add(TableDef{"sensors",
               {Col("s_id", ColumnType::kInt64, 0, true),
                Col("s_site", ColumnType::kInt64),
                Col("s_kind", ColumnType::kChar, 16),
                Col("s_unit", ColumnType::kChar, 8)},
               50000});
  add(TableDef{"sites",
               {Col("st_id", ColumnType::kInt64, 0, true),
                Col("st_name", ColumnType::kVarchar, 40),
                Col("st_region", ColumnType::kChar, 16)},
               500});
  catalog.SetScaleFactor(scale_factor);
  return catalog;
}

std::vector<Query> TimeSeriesQueries() {
  std::vector<Query> queries;
  auto add = [&](const char* name, bool is_update, double cost_seconds,
                 std::vector<TableAccess> accesses) {
    Query q;
    q.text = name;
    q.accesses = std::move(accesses);
    q.is_update = is_update;
    q.cost = cost_seconds;
    queries.push_back(std::move(q));
  };

  // Ingest appends to the newest range partition only.
  add("ts-ingest", true, 0.0002, {{"events", {}, {7}}});
  // Live dashboard over the last complete range.
  add("ts-live", false, 0.004,
      {{"events", {}, {6}}, {"sensors", {}, {}}});
  // Daily rollup over the recent ranges.
  add("ts-daily", false, 0.010,
      {{"events", {}, {4, 5, 6}}, {"sensors", {}, {}}, {"sites", {}, {}}});
  // Historical reporting over the closed ranges.
  add("ts-history", false, 0.025,
      {{"events", {}, {0, 1, 2, 3, 4, 5}}, {"sites", {}, {}}});
  // Cold archive scans.
  add("ts-archive", false, 0.020, {{"events", {}, {0, 1}}});
  return queries;
}

QueryJournal TimeSeriesJournal(uint64_t total_queries) {
  // Counts tuned so the weights come out: ingest 15%, live 25%, daily 20%,
  // history 25%, archive 15%.
  const std::vector<Query> templates = TimeSeriesQueries();
  const double weights[] = {0.15, 0.25, 0.20, 0.25, 0.15};
  QueryJournal journal;
  // Pick a notional total cost of `total_queries` microjoules and derive
  // counts from weight/cost.
  const double total_cost = static_cast<double>(total_queries) * 0.002;
  for (size_t i = 0; i < templates.size(); ++i) {
    const auto count = static_cast<uint64_t>(
        weights[i] * total_cost / templates[i].cost + 0.5);
    journal.Record(templates[i], count > 0 ? count : 1);
  }
  return journal;
}

}  // namespace qcap::workloads
