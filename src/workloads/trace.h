// Synthetic diurnal workload trace (Section 5).
//
// Substitute for the paper's private e-learning backend trace (Oct 20,
// 2009), which could not be published. Reproduces the visible features of
// Figures 4-6: a night trough around 3-6 am, a steep morning ramp, an
// afternoon/evening plateau around 4,000-4,500 requests per 10 minutes,
// and a per-class mix that shifts over the day (class B dominates 3-8 am).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/catalog.h"
#include "workload/journal.h"

namespace qcap::workloads {

/// Number of query classes in the trace (classes A-E of Figure 6).
inline constexpr size_t kTraceClasses = 5;

/// Smooth base request rate in requests per 10 minutes at \p tod_seconds
/// (time of day in [0, 86400)).
double DiurnalRate(double tod_seconds);

/// Relative class mix (size kTraceClasses, sums to 1) at \p tod_seconds.
/// Class B (index 1) dominates at night, the interactive classes dominate
/// during the day.
std::vector<double> DiurnalClassMix(double tod_seconds);

/// One sampled point of the trace.
struct TracePoint {
  double tod_seconds = 0.0;
  /// Total requests in the 10-minute bucket (noisy around DiurnalRate).
  double requests_per_10min = 0.0;
  /// Per-class requests in the bucket.
  std::vector<double> class_requests;
};

/// Samples a full day in \p bucket_seconds buckets with multiplicative
/// noise; deterministic for a given \p seed.
std::vector<TracePoint> SampleDay(uint64_t seed, double bucket_seconds = 600.0);

/// The query templates behind trace classes A-E (reads over an e-learning
/// style schema plus one update class embedded in class E).
std::vector<Query> TraceQueries();

/// Schema for the trace queries.
engine::Catalog TraceCatalog();

/// Builds a timestamped journal of one day at \p queries_per_day total
/// executions following the diurnal rate and mix. Timestamps enable
/// workload segmentation.
QueryJournal TraceJournal(uint64_t queries_per_day, uint64_t seed);

}  // namespace qcap::workloads
