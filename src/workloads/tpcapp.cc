#include "workloads/tpcapp.h"

#include <cassert>

namespace qcap::workloads {

using engine::ColumnDef;
using engine::ColumnType;
using engine::TableDef;

namespace {

ColumnDef Col(const char* name, ColumnType type, uint32_t width = 0,
              bool pk = false) {
  return ColumnDef{name, type, width, pk};
}

/// Query templates with per-execution costs. The `update_cost_factor`
/// scales the update costs (1.0 = the paper's EB=300 mix with 25% update
/// weight; 3.0 yields the large-scale 1:1 read:update weight mix).
std::vector<Query> BuildQueries(double update_cost_factor) {
  std::vector<Query> queries;
  auto add = [&](const char* name, bool is_update, double cost_seconds,
                 std::vector<TableAccess> accesses) {
    Query q;
    q.text = name;
    q.accesses = std::move(accesses);
    q.is_update = is_update;
    q.cost = cost_seconds;
    queries.push_back(std::move(q));
  };

  // --- Read services (75% of the weight at factor 1) ---
  // Product detail page: item joined with author.
  add("app-product-detail", false, 0.002,
      {{"item",
        {"i_id", "i_title", "i_a_id", "i_publisher", "i_desc", "i_srp",
         "i_cost", "i_isbn", "i_page", "i_backing"},
        {}},
       {"author", {"a_id", "a_fname", "a_lname", "a_bio"}, {}}});
  // New products listing: different item/author columns, same tables.
  add("app-new-products", false, 0.002,
      {{"item",
        {"i_id", "i_title", "i_a_id", "i_pub_date", "i_subject", "i_srp"},
        {}},
       {"author", {"a_id", "a_fname", "a_lname"}, {}}});
  // Best sellers: the complex aggregation -- 50% of the workload weight
  // from 1.5% of the queries. It ranks items by the sales statistics
  // maintained on the item table (i_stock/i_avail updated by the stock
  // service); it does not scan the order tables, which is what lets the
  // allocator isolate the order_line write class (Eq. 30).
  add("app-best-sellers", false, 0.033333,
      {{"item",
        {"i_id", "i_title", "i_a_id", "i_subject", "i_srp", "i_stock",
         "i_avail"},
        {}}});
  // Order status: the only read touching order_line.
  add("app-order-status", false, 0.004,
      {{"customer", {"c_id", "c_uname", "c_fname", "c_lname"}, {}},
       {"order_line",
        {"ol_id", "ol_o_id", "ol_i_id", "ol_qty", "ol_discount"},
        {}},
       {"address",
        {"addr_id", "addr_street1", "addr_city", "addr_zip", "addr_co_id"},
        {}},
       {"country", {"co_id", "co_name"}, {}}});
  // Customer order history over the orders table.
  add("app-order-history", false, 0.0026667,
      {{"customer", {"c_id", "c_uname", "c_email", "c_phone"}, {}},
       {"orders", {"o_id", "o_c_id", "o_date", "o_sub_total", "o_total"}, {}},
       {"address", {"addr_id", "addr_street2", "addr_state", "addr_co_id"}, {}},
       {"country", {"co_id", "co_currency"}, {}}});
  // Customer profile: same tables as order history, different columns.
  add("app-customer-profile", false, 0.0024,
      {{"customer", {"c_id", "c_since", "c_balance", "c_discount"}, {}},
       {"orders", {"o_id", "o_c_id", "o_status", "o_ship_date"}, {}},
       {"address", {"addr_id", "addr_city", "addr_co_id"}, {}},
       {"country", {"co_id", "co_name", "co_exchange"}, {}}});

  // --- Update services (inserts/updates touch whole rows, so they
  // reference every column; at column granularity this allocates the full
  // table, as the paper observed) ---
  add("app-orderline-insert", true, 0.0003714 * update_cost_factor,
      {{"order_line", {}, {}}});
  add("app-order-insert", true, 0.0003 * update_cost_factor,
      {{"orders", {}, {}}});
  add("app-payment-insert", true, 0.0002286 * update_cost_factor,
      {{"cc_xacts", {}, {}}});
  add("app-stock-update", true, 0.0001333 * update_cost_factor,
      {{"item", {}, {}}});

  return queries;
}

/// Per-template execution counts for a 200k-request run (read:write count
/// ratio 1:7; best sellers at 1.5% of all requests).
const uint64_t kBaseCounts[] = {
    10000,  // product-detail      (10% weight)
    5000,   // new-products        ( 5% weight)
    3000,   // best-sellers        (50% weight)
    1500,   // order-status        ( 3% weight)
    3000,   // order-history       ( 4% weight)
    2500,   // customer-profile    ( 3% weight)
    70000,  // orderline-insert    (13% weight)
    40000,  // order-insert        ( 6% weight)
    35000,  // payment-insert      ( 4% weight)
    30000,  // stock-update        ( 2% weight)
};
constexpr uint64_t kBaseTotal = 200000;

QueryJournal BuildJournal(uint64_t total_queries, double update_cost_factor) {
  const std::vector<Query> templates = BuildQueries(update_cost_factor);
  assert(templates.size() == sizeof(kBaseCounts) / sizeof(kBaseCounts[0]));
  QueryJournal journal;
  for (size_t i = 0; i < templates.size(); ++i) {
    uint64_t count = kBaseCounts[i] * total_queries / kBaseTotal;
    if (count == 0) count = 1;
    journal.Record(templates[i], count);
  }
  return journal;
}

}  // namespace

engine::Catalog TpcAppCatalog(double emulated_browsers) {
  engine::Catalog catalog;
  auto add = [&](TableDef def) {
    Status st = catalog.AddTable(std::move(def));
    assert(st.ok());
    (void)st;
  };

  add(TableDef{
      "customer",
      {Col("c_id", ColumnType::kInt64, 0, true),
       Col("c_uname", ColumnType::kChar, 20),
       Col("c_passwd", ColumnType::kChar, 20),
       Col("c_fname", ColumnType::kChar, 17),
       Col("c_lname", ColumnType::kChar, 17),
       Col("c_email", ColumnType::kVarchar, 50),
       Col("c_phone", ColumnType::kChar, 16),
       Col("c_addr_id", ColumnType::kInt64),
       Col("c_since", ColumnType::kDate),
       Col("c_balance", ColumnType::kDecimal),
       Col("c_ytd_pmt", ColumnType::kDecimal),
       Col("c_discount", ColumnType::kDecimal),
       Col("c_data", ColumnType::kVarchar, 50)},
      700});
  add(TableDef{
      "address",
      {Col("addr_id", ColumnType::kInt64, 0, true),
       Col("addr_street1", ColumnType::kVarchar, 25),
       Col("addr_street2", ColumnType::kVarchar, 25),
       Col("addr_city", ColumnType::kChar, 30),
       Col("addr_state", ColumnType::kChar, 20),
       Col("addr_zip", ColumnType::kChar, 10),
       Col("addr_co_id", ColumnType::kInt32)},
      900});
  add(TableDef{
      "country",
      {Col("co_id", ColumnType::kInt32, 0, true),
       Col("co_name", ColumnType::kChar, 50),
       Col("co_currency", ColumnType::kChar, 18),
       Col("co_exchange", ColumnType::kDecimal)},
      92});
  add(TableDef{
      "author",
      {Col("a_id", ColumnType::kInt64, 0, true),
       Col("a_fname", ColumnType::kChar, 20),
       Col("a_lname", ColumnType::kChar, 20),
       Col("a_mname", ColumnType::kChar, 20),
       Col("a_dob", ColumnType::kDate),
       Col("a_bio", ColumnType::kVarchar, 120)},
      250});
  add(TableDef{
      "item",
      {Col("i_id", ColumnType::kInt64, 0, true),
       Col("i_title", ColumnType::kVarchar, 60),
       Col("i_a_id", ColumnType::kInt64),
       Col("i_pub_date", ColumnType::kDate),
       Col("i_publisher", ColumnType::kChar, 60),
       Col("i_subject", ColumnType::kChar, 60),
       Col("i_desc", ColumnType::kVarchar, 100),
       Col("i_srp", ColumnType::kDecimal),
       Col("i_cost", ColumnType::kDecimal),
       Col("i_avail", ColumnType::kDate),
       Col("i_stock", ColumnType::kInt32),
       Col("i_isbn", ColumnType::kChar, 13),
       Col("i_page", ColumnType::kInt32),
       Col("i_backing", ColumnType::kChar, 15),
       Col("i_dimensions", ColumnType::kChar, 25)},
      400});
  add(TableDef{
      "orders",
      {Col("o_id", ColumnType::kInt64, 0, true),
       Col("o_c_id", ColumnType::kInt64),
       Col("o_date", ColumnType::kDate),
       Col("o_sub_total", ColumnType::kDecimal),
       Col("o_tax", ColumnType::kDecimal),
       Col("o_total", ColumnType::kDecimal),
       Col("o_ship_type", ColumnType::kChar, 10),
       Col("o_ship_date", ColumnType::kDate),
       Col("o_bill_addr_id", ColumnType::kInt64),
       Col("o_ship_addr_id", ColumnType::kInt64),
       Col("o_status", ColumnType::kChar, 16)},
      900});
  add(TableDef{
      "order_line",
      {Col("ol_id", ColumnType::kInt64, 0, true),
       Col("ol_o_id", ColumnType::kInt64),
       Col("ol_i_id", ColumnType::kInt64),
       Col("ol_qty", ColumnType::kInt32),
       Col("ol_discount", ColumnType::kDecimal),
       Col("ol_comments", ColumnType::kVarchar, 30)},
      2700});
  add(TableDef{
      "cc_xacts",
      {Col("cx_o_id", ColumnType::kInt64, 0, true),
       Col("cx_type", ColumnType::kChar, 10),
       Col("cx_num", ColumnType::kChar, 16),
       Col("cx_name", ColumnType::kChar, 30),
       Col("cx_expire", ColumnType::kDate),
       Col("cx_auth_id", ColumnType::kChar, 15),
       Col("cx_xact_amt", ColumnType::kDecimal),
       Col("cx_xact_date", ColumnType::kDate),
       Col("cx_co_id", ColumnType::kInt32)},
      900});

  catalog.SetScaleFactor(emulated_browsers);
  return catalog;
}

std::vector<Query> TpcAppQueries() { return BuildQueries(1.0); }

QueryJournal TpcAppJournal(uint64_t total_queries) {
  return BuildJournal(total_queries, 1.0);
}

QueryJournal TpcAppLargeJournal(uint64_t total_queries) {
  return BuildJournal(total_queries, 3.0);
}

}  // namespace qcap::workloads
