#include "workloads/journal_synth.h"

#include <cassert>
#include <string>

#include "common/random.h"

namespace qcap::workloads {

Result<QueryJournal> JournalFromCounts(const std::vector<Query>& templates,
                                       const std::vector<uint64_t>& counts) {
  if (templates.size() != counts.size()) {
    return Status::InvalidArgument("templates and counts differ in length");
  }
  QueryJournal journal;
  for (size_t i = 0; i < templates.size(); ++i) {
    journal.Record(templates[i], counts[i]);
  }
  return journal;
}

RandomWorkload MakeRandomWorkload(uint64_t seed,
                                  const RandomWorkloadOptions& options) {
  Rng rng(seed);
  RandomWorkload out;

  for (size_t t = 0; t < options.num_tables; ++t) {
    engine::TableDef def;
    def.name = "t" + std::to_string(t);
    def.base_rows = 1000 + rng.NextBounded(1000000);
    for (size_t c = 0; c < options.columns_per_table; ++c) {
      engine::ColumnDef col;
      col.name = "c" + std::to_string(c);
      col.type = engine::ColumnType::kVarchar;
      col.declared_width = 4 + static_cast<uint32_t>(rng.NextBounded(60));
      col.primary_key = (c == 0);
      def.columns.push_back(std::move(col));
    }
    Status st = out.catalog.AddTable(std::move(def));
    assert(st.ok());
    (void)st;
  }

  auto make_query = [&](const std::string& name, bool is_update) {
    Query q;
    q.text = name;
    q.is_update = is_update;
    q.cost = rng.NextDouble(options.min_cost, options.max_cost);
    const size_t ntab =
        1 + rng.NextBounded(std::min(options.max_tables_per_query,
                                     options.num_tables));
    std::vector<size_t> tables(options.num_tables);
    for (size_t i = 0; i < tables.size(); ++i) tables[i] = i;
    rng.Shuffle(tables.begin(), tables.end());
    for (size_t i = 0; i < ntab; ++i) {
      TableAccess access;
      access.table = "t" + std::to_string(tables[i]);
      // Updates touch whole rows; reads pick a random column subset.
      if (!is_update) {
        for (size_t c = 0; c < options.columns_per_table; ++c) {
          if (rng.NextBernoulli(0.5)) {
            access.columns.push_back("c" + std::to_string(c));
          }
        }
        if (access.columns.empty()) access.columns.push_back("c0");
      }
      q.accesses.push_back(std::move(access));
    }
    return q;
  };

  for (size_t i = 0; i < options.num_read_templates; ++i) {
    const Query q = make_query("r" + std::to_string(i), false);
    out.journal.Record(
        q, options.min_count +
               rng.NextBounded(options.max_count - options.min_count + 1));
  }
  for (size_t i = 0; i < options.num_update_templates; ++i) {
    const Query q = make_query("u" + std::to_string(i), true);
    out.journal.Record(
        q, options.min_count +
               rng.NextBounded(options.max_count - options.min_count + 1));
  }
  return out;
}

}  // namespace qcap::workloads
