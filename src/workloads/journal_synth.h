// Journal synthesis helpers: build journals from template/count pairs and
// random workloads for property-based testing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "workload/journal.h"

namespace qcap::workloads {

/// Builds a journal from parallel template/count vectors.
Result<QueryJournal> JournalFromCounts(const std::vector<Query>& templates,
                                       const std::vector<uint64_t>& counts);

/// Parameters for random workload synthesis (property tests, ablations).
struct RandomWorkloadOptions {
  size_t num_tables = 6;
  size_t columns_per_table = 5;
  size_t num_read_templates = 8;
  size_t num_update_templates = 3;
  /// Maximum tables one query references.
  size_t max_tables_per_query = 3;
  double min_cost = 0.001;
  double max_cost = 0.1;
  uint64_t min_count = 10;
  uint64_t max_count = 1000;
};

/// A random schema + journal pair, deterministic for a given seed.
struct RandomWorkload {
  engine::Catalog catalog;
  QueryJournal journal;
};

/// Synthesizes a random but well-formed workload.
RandomWorkload MakeRandomWorkload(uint64_t seed,
                                  const RandomWorkloadOptions& options = {});

}  // namespace qcap::workloads
