// Synthetic time-series (append-mostly) workload for the horizontal
// partitioning granularity (Section 3.1: "group the queries based on
// their predicates and, thus, create a horizontal partitioning").
//
// An `events` fact table is range-partitioned by time into P partitions.
// Ingest appends only to the newest partition; dashboards read the recent
// partitions; reports scan historical ranges. At table granularity every
// query class references the whole events table (ingest forces the table
// onto every reading backend); at horizontal granularity the hot tail is
// isolated and the cold ranges replicate freely.
#pragma once

#include <cstdint>

#include "engine/catalog.h"
#include "workload/journal.h"

namespace qcap::workloads {

/// Number of range partitions the workload's predicates are aligned to.
inline constexpr int kTimeSeriesPartitions = 8;

/// Schema: `events` (large, partitioned) + `sensors`, `sites` dimensions.
engine::Catalog TimeSeriesCatalog(double scale_factor = 1.0);

/// Query templates: partition-aligned reads plus tail-partition ingest.
std::vector<Query> TimeSeriesQueries();

/// A journal with an ingest-heavy mix (~30% update weight concentrated on
/// the newest partition).
QueryJournal TimeSeriesJournal(uint64_t total_queries = 100000);

}  // namespace qcap::workloads
