// TPC-App-style workload model (Section 4.2).
//
// Simulation of the benchmark's online-bookseller web services against a
// custom schema, reproducing the workload shape the paper reports:
//   - read:write query count ratio of about 1:7,
//   - reads producing ~3x the processing weight of the writes
//     (75% / 25% weight split),
//   - one complex read class ("best sellers") with 50% of the workload
//     weight from only 1.5% of the queries,
//   - Order_Line inserts at ~13% of the weight (the class that bounds the
//     theoretical speedup at |B|/1.3, Eq. 30),
//   - 8 query classes at table granularity and 10 at column granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/catalog.h"
#include "workload/journal.h"

namespace qcap::workloads {

/// TPC-App schema, scaled by emulated browsers: EB=300 is the paper's
/// ~280 MB configuration, EB=12000 the ~8 GB large-scale configuration.
engine::Catalog TpcAppCatalog(double emulated_browsers = 300.0);

/// The web-service query templates (6 reads + 4 updates) with structured
/// column references and per-execution costs in seconds.
std::vector<Query> TpcAppQueries();

/// A journal with the paper's mix (see file header); \p total_queries
/// defaults to the paper's ~200,000 requests.
QueryJournal TpcAppJournal(uint64_t total_queries = 200000);

/// The large-scale variant (Fig. 4i): update weight is raised to ~50% of
/// the workload (1:1 read:update weight) with more expensive updates.
QueryJournal TpcAppLargeJournal(uint64_t total_queries = 200000);

}  // namespace qcap::workloads
