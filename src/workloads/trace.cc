#include "workloads/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/random.h"

namespace qcap::workloads {

using engine::ColumnDef;
using engine::ColumnType;
using engine::TableDef;

namespace {

constexpr double kHour = 3600.0;

double Logistic(double x) { return 1.0 / (1.0 + std::exp(-x)); }

ColumnDef Col(const char* name, ColumnType type, uint32_t width = 0,
              bool pk = false) {
  return ColumnDef{name, type, width, pk};
}

}  // namespace

double DiurnalRate(double tod_seconds) {
  const double t = tod_seconds / kHour;  // Hours.
  // Night floor, steep morning ramp (~8:30), evening decline (~22:30).
  const double ramp_up = Logistic((t - 8.5) / 0.8);
  const double ramp_down = 1.0 - Logistic((t - 22.5) / 0.8);
  double rate = 250.0 + 3900.0 * ramp_up * ramp_down;
  // Mild early-evening peak around 19:00 (Figure 4's maximum).
  rate += 450.0 * std::exp(-0.5 * std::pow((t - 19.0) / 2.0, 2.0));
  return rate;
}

std::vector<double> DiurnalClassMix(double tod_seconds) {
  const double t = tod_seconds / kHour;
  // "night" is high between ~3:00 and ~8:00.
  const double night = Logistic((t - 3.0) / 0.7) * (1.0 - Logistic((t - 8.0) / 0.7));
  const double day = 1.0 - night;
  // Day mix vs night mix (class B = index 1 dominates at night).
  const double day_mix[kTraceClasses] = {0.30, 0.10, 0.25, 0.20, 0.15};
  const double night_mix[kTraceClasses] = {0.15, 0.55, 0.10, 0.10, 0.10};
  std::vector<double> mix(kTraceClasses);
  double total = 0.0;
  for (size_t i = 0; i < kTraceClasses; ++i) {
    mix[i] = day * day_mix[i] + night * night_mix[i];
    total += mix[i];
  }
  for (double& m : mix) m /= total;
  return mix;
}

std::vector<TracePoint> SampleDay(uint64_t seed, double bucket_seconds) {
  Rng rng(seed);
  std::vector<TracePoint> points;
  for (double t = 0.0; t < 86400.0; t += bucket_seconds) {
    TracePoint p;
    p.tod_seconds = t;
    const double noise = 1.0 + 0.08 * rng.NextGaussian(0.0, 1.0);
    p.requests_per_10min =
        std::max(50.0, DiurnalRate(t) * noise * (bucket_seconds / 600.0));
    const std::vector<double> mix = DiurnalClassMix(t);
    p.class_requests.resize(kTraceClasses);
    for (size_t i = 0; i < kTraceClasses; ++i) {
      p.class_requests[i] = p.requests_per_10min * mix[i];
    }
    points.push_back(std::move(p));
  }
  return points;
}

engine::Catalog TraceCatalog() {
  engine::Catalog catalog;
  auto add = [&](TableDef def) {
    Status st = catalog.AddTable(std::move(def));
    assert(st.ok());
    (void)st;
  };
  add(TableDef{"users",
               {Col("u_id", ColumnType::kInt64, 0, true),
                Col("u_name", ColumnType::kVarchar, 40),
                Col("u_email", ColumnType::kVarchar, 50),
                Col("u_role", ColumnType::kChar, 10),
                Col("u_last_login", ColumnType::kDate)},
               20000});
  add(TableDef{"courses",
               {Col("cr_id", ColumnType::kInt64, 0, true),
                Col("cr_title", ColumnType::kVarchar, 80),
                Col("cr_term", ColumnType::kChar, 12),
                Col("cr_teacher", ColumnType::kInt64)},
               800});
  add(TableDef{"enrollment",
               {Col("e_user", ColumnType::kInt64, 0, true),
                Col("e_course", ColumnType::kInt64, 0, true),
                Col("e_state", ColumnType::kChar, 8),
                Col("e_joined", ColumnType::kDate)},
               120000});
  add(TableDef{"content",
               {Col("ct_id", ColumnType::kInt64, 0, true),
                Col("ct_course", ColumnType::kInt64),
                Col("ct_title", ColumnType::kVarchar, 80),
                Col("ct_body", ColumnType::kVarchar, 900),
                Col("ct_updated", ColumnType::kDate)},
               50000});
  add(TableDef{"forum_posts",
               {Col("fp_id", ColumnType::kInt64, 0, true),
                Col("fp_thread", ColumnType::kInt64),
                Col("fp_user", ColumnType::kInt64),
                Col("fp_body", ColumnType::kVarchar, 400),
                Col("fp_posted", ColumnType::kDate)},
               250000});
  add(TableDef{"grades",
               {Col("g_user", ColumnType::kInt64, 0, true),
                Col("g_course", ColumnType::kInt64, 0, true),
                Col("g_item", ColumnType::kInt64, 0, true),
                Col("g_score", ColumnType::kDecimal),
                Col("g_graded", ColumnType::kDate)},
               400000});
  add(TableDef{"sessions_log",
               {Col("sl_id", ColumnType::kInt64, 0, true),
                Col("sl_user", ColumnType::kInt64),
                Col("sl_action", ColumnType::kChar, 16),
                Col("sl_time", ColumnType::kDate)},
               1000000});
  return catalog;
}

std::vector<Query> TraceQueries() {
  std::vector<Query> queries;
  auto add = [&](const char* name, bool is_update, double cost_seconds,
                 std::vector<TableAccess> accesses) {
    Query q;
    q.text = name;
    q.accesses = std::move(accesses);
    q.is_update = is_update;
    q.cost = cost_seconds;
    queries.push_back(std::move(q));
  };
  // Class A: content browsing.
  add("trace-a-content", false, 0.005,
      {{"content", {"ct_id", "ct_course", "ct_title", "ct_body"}, {}},
       {"courses", {"cr_id", "cr_title"}, {}}});
  // Class B: nightly grade/report batch (heavy).
  add("trace-b-reports", false, 0.040,
      {{"grades", {}, {}},
       {"enrollment", {"e_user", "e_course", "e_state"}, {}},
       {"users", {"u_id", "u_name", "u_role"}, {}}});
  // Class C: forum reading.
  add("trace-c-forum", false, 0.006,
      {{"forum_posts", {"fp_id", "fp_thread", "fp_user", "fp_body"}, {}},
       {"users", {"u_id", "u_name"}, {}}});
  // Class D: dashboards.
  add("trace-d-dashboard", false, 0.008,
      {{"enrollment", {"e_user", "e_course", "e_joined"}, {}},
       {"courses", {"cr_id", "cr_title", "cr_term"}, {}},
       {"users", {"u_id", "u_name", "u_last_login"}, {}}});
  // Class E: session logging (update).
  add("trace-e-sessions", true, 0.002, {{"sessions_log", {}, {}}});
  return queries;
}

QueryJournal TraceJournal(uint64_t queries_per_day, uint64_t seed) {
  const std::vector<Query> templates = TraceQueries();
  assert(templates.size() == kTraceClasses);
  const std::vector<TracePoint> day = SampleDay(seed, 600.0);

  double trace_total = 0.0;
  for (const auto& p : day) trace_total += p.requests_per_10min;
  const double scale = static_cast<double>(queries_per_day) / trace_total;

  Rng rng(seed ^ 0x5eedULL);
  QueryJournal journal;
  for (const auto& p : day) {
    for (size_t c = 0; c < kTraceClasses; ++c) {
      const auto count = static_cast<uint64_t>(p.class_requests[c] * scale);
      for (uint64_t i = 0; i < count; ++i) {
        const double ts = p.tod_seconds + rng.NextDouble() * 600.0;
        journal.RecordAt(templates[c], ts);
      }
    }
  }
  return journal;
}

}  // namespace qcap::workloads
