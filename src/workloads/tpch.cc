#include "workloads/tpch.h"

#include <cassert>

namespace qcap::workloads {

using engine::ColumnDef;
using engine::ColumnType;
using engine::TableDef;

namespace {

ColumnDef Col(const char* name, ColumnType type, uint32_t width = 0,
              bool pk = false) {
  return ColumnDef{name, type, width, pk};
}

}  // namespace

engine::Catalog TpchCatalog(double scale_factor) {
  engine::Catalog catalog;
  auto add = [&](TableDef def) {
    Status st = catalog.AddTable(std::move(def));
    assert(st.ok());
    (void)st;
  };

  add(TableDef{
      "region",
      {Col("r_regionkey", ColumnType::kInt32, 0, true),
       Col("r_name", ColumnType::kChar, 25),
       Col("r_comment", ColumnType::kVarchar, 100)},
      5});
  add(TableDef{
      "nation",
      {Col("n_nationkey", ColumnType::kInt32, 0, true),
       Col("n_name", ColumnType::kChar, 25),
       Col("n_regionkey", ColumnType::kInt32),
       Col("n_comment", ColumnType::kVarchar, 100)},
      25});
  add(TableDef{
      "supplier",
      {Col("s_suppkey", ColumnType::kInt32, 0, true),
       Col("s_name", ColumnType::kChar, 25),
       Col("s_address", ColumnType::kVarchar, 30),
       Col("s_nationkey", ColumnType::kInt32),
       Col("s_phone", ColumnType::kChar, 15),
       Col("s_acctbal", ColumnType::kDecimal),
       Col("s_comment", ColumnType::kVarchar, 75)},
      10000});
  add(TableDef{
      "customer",
      {Col("c_custkey", ColumnType::kInt32, 0, true),
       Col("c_name", ColumnType::kVarchar, 25),
       Col("c_address", ColumnType::kVarchar, 30),
       Col("c_nationkey", ColumnType::kInt32),
       Col("c_phone", ColumnType::kChar, 15),
       Col("c_acctbal", ColumnType::kDecimal),
       Col("c_mktsegment", ColumnType::kChar, 10),
       Col("c_comment", ColumnType::kVarchar, 90)},
      150000});
  add(TableDef{
      "part",
      {Col("p_partkey", ColumnType::kInt32, 0, true),
       Col("p_name", ColumnType::kVarchar, 40),
       Col("p_mfgr", ColumnType::kChar, 25),
       Col("p_brand", ColumnType::kChar, 10),
       Col("p_type", ColumnType::kVarchar, 20),
       Col("p_size", ColumnType::kInt32),
       Col("p_container", ColumnType::kChar, 10),
       Col("p_retailprice", ColumnType::kDecimal),
       Col("p_comment", ColumnType::kVarchar, 15)},
      200000});
  add(TableDef{
      "partsupp",
      {Col("ps_partkey", ColumnType::kInt32, 0, true),
       Col("ps_suppkey", ColumnType::kInt32, 0, true),
       Col("ps_availqty", ColumnType::kInt32),
       Col("ps_supplycost", ColumnType::kDecimal),
       Col("ps_comment", ColumnType::kVarchar, 125)},
      800000});
  add(TableDef{
      "orders",
      {Col("o_orderkey", ColumnType::kInt32, 0, true),
       Col("o_custkey", ColumnType::kInt32),
       Col("o_orderstatus", ColumnType::kChar, 1),
       Col("o_totalprice", ColumnType::kDecimal),
       Col("o_orderdate", ColumnType::kDate),
       Col("o_orderpriority", ColumnType::kChar, 15),
       Col("o_clerk", ColumnType::kChar, 15),
       Col("o_shippriority", ColumnType::kInt32),
       Col("o_comment", ColumnType::kVarchar, 50)},
      1500000});
  add(TableDef{
      "lineitem",
      {Col("l_orderkey", ColumnType::kInt32, 0, true),
       Col("l_partkey", ColumnType::kInt32),
       Col("l_suppkey", ColumnType::kInt32),
       Col("l_linenumber", ColumnType::kInt32, 0, true),
       Col("l_quantity", ColumnType::kDecimal),
       Col("l_extendedprice", ColumnType::kDecimal),
       Col("l_discount", ColumnType::kDecimal),
       Col("l_tax", ColumnType::kDecimal),
       Col("l_returnflag", ColumnType::kChar, 1),
       Col("l_linestatus", ColumnType::kChar, 1),
       Col("l_shipdate", ColumnType::kDate),
       Col("l_commitdate", ColumnType::kDate),
       Col("l_receiptdate", ColumnType::kDate),
       Col("l_shipinstruct", ColumnType::kChar, 25),
       Col("l_shipmode", ColumnType::kChar, 10),
       Col("l_comment", ColumnType::kVarchar, 27)},
      6000000});

  catalog.SetScaleFactor(scale_factor);
  return catalog;
}

std::vector<Query> TpchQueries() {
  std::vector<Query> queries;
  auto read = [&](const char* name, double cost_seconds,
                  std::vector<TableAccess> accesses) {
    Query q;
    q.text = name;
    q.accesses = std::move(accesses);
    q.is_update = false;
    q.cost = cost_seconds;
    queries.push_back(std::move(q));
  };

  // Column references per TPC-H template; per-execution costs are
  // calibrated to single-node PostgreSQL at SF 1 (relative magnitudes are
  // what matters: the paper notes classes "differ considerably in weight").
  read("tpch-q1", 12.0,
       {{"lineitem",
         {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
          "l_discount", "l_tax", "l_shipdate"},
         {}}});
  read("tpch-q2", 1.5,
       {{"part", {"p_partkey", "p_mfgr", "p_size", "p_type"}, {}},
        {"supplier",
         {"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
          "s_acctbal", "s_comment"},
         {}},
        {"partsupp", {"ps_partkey", "ps_suppkey", "ps_supplycost"}, {}},
        {"nation", {"n_nationkey", "n_name", "n_regionkey"}, {}},
        {"region", {"r_regionkey", "r_name"}, {}}});
  read("tpch-q3", 5.0,
       {{"customer", {"c_custkey", "c_mktsegment"}, {}},
        {"orders",
         {"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"},
         {}},
        {"lineitem",
         {"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"},
         {}}});
  read("tpch-q4", 3.0,
       {{"orders", {"o_orderkey", "o_orderdate", "o_orderpriority"}, {}},
        {"lineitem", {"l_orderkey", "l_commitdate", "l_receiptdate"}, {}}});
  read("tpch-q5", 5.0,
       {{"customer", {"c_custkey", "c_nationkey"}, {}},
        {"orders", {"o_orderkey", "o_custkey", "o_orderdate"}, {}},
        {"lineitem",
         {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"},
         {}},
        {"supplier", {"s_suppkey", "s_nationkey"}, {}},
        {"nation", {"n_nationkey", "n_name", "n_regionkey"}, {}},
        {"region", {"r_regionkey", "r_name"}, {}}});
  read("tpch-q6", 2.0,
       {{"lineitem",
         {"l_shipdate", "l_quantity", "l_extendedprice", "l_discount"},
         {}}});
  read("tpch-q7", 5.0,
       {{"supplier", {"s_suppkey", "s_nationkey"}, {}},
        {"lineitem",
         {"l_orderkey", "l_suppkey", "l_shipdate", "l_extendedprice",
          "l_discount"},
         {}},
        {"orders", {"o_orderkey", "o_custkey"}, {}},
        {"customer", {"c_custkey", "c_nationkey"}, {}},
        {"nation", {"n_nationkey", "n_name"}, {}}});
  read("tpch-q8", 5.0,
       {{"part", {"p_partkey", "p_type"}, {}},
        {"supplier", {"s_suppkey", "s_nationkey"}, {}},
        {"lineitem",
         {"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice",
          "l_discount"},
         {}},
        {"orders", {"o_orderkey", "o_custkey", "o_orderdate"}, {}},
        {"customer", {"c_custkey", "c_nationkey"}, {}},
        {"nation", {"n_nationkey", "n_name", "n_regionkey"}, {}},
        {"region", {"r_regionkey", "r_name"}, {}}});
  read("tpch-q9", 18.0,
       {{"part", {"p_partkey", "p_name"}, {}},
        {"supplier", {"s_suppkey", "s_nationkey"}, {}},
        {"lineitem",
         {"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
          "l_extendedprice", "l_discount"},
         {}},
        {"partsupp", {"ps_partkey", "ps_suppkey", "ps_supplycost"}, {}},
        {"orders", {"o_orderkey", "o_orderdate"}, {}},
        {"nation", {"n_nationkey", "n_name"}, {}}});
  read("tpch-q10", 5.0,
       {{"customer",
         {"c_custkey", "c_name", "c_acctbal", "c_phone", "c_address",
          "c_comment", "c_nationkey"},
         {}},
        {"orders", {"o_orderkey", "o_custkey", "o_orderdate"}, {}},
        {"lineitem",
         {"l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"},
         {}},
        {"nation", {"n_nationkey", "n_name"}, {}}});
  read("tpch-q11", 1.0,
       {{"partsupp",
         {"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"},
         {}},
        {"supplier", {"s_suppkey", "s_nationkey"}, {}},
        {"nation", {"n_nationkey", "n_name"}, {}}});
  read("tpch-q12", 3.0,
       {{"orders", {"o_orderkey", "o_orderpriority"}, {}},
        {"lineitem",
         {"l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate",
          "l_shipdate"},
         {}}});
  read("tpch-q13", 8.0,
       {{"customer", {"c_custkey"}, {}},
        {"orders", {"o_orderkey", "o_custkey", "o_comment"}, {}}});
  read("tpch-q14", 2.5,
       {{"lineitem",
         {"l_partkey", "l_shipdate", "l_extendedprice", "l_discount"},
         {}},
        {"part", {"p_partkey", "p_type"}, {}}});
  read("tpch-q15", 2.5,
       {{"lineitem",
         {"l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"},
         {}},
        {"supplier", {"s_suppkey", "s_name", "s_address", "s_phone"}, {}}});
  read("tpch-q16", 1.5,
       {{"partsupp", {"ps_partkey", "ps_suppkey"}, {}},
        {"part", {"p_partkey", "p_brand", "p_type", "p_size"}, {}},
        {"supplier", {"s_suppkey", "s_comment"}, {}}});
  read("tpch-q18", 15.0,
       {{"customer", {"c_custkey", "c_name"}, {}},
        {"orders",
         {"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"},
         {}},
        {"lineitem", {"l_orderkey", "l_quantity"}, {}}});
  read("tpch-q19", 2.5,
       {{"lineitem",
         {"l_partkey", "l_quantity", "l_extendedprice", "l_discount",
          "l_shipmode", "l_shipinstruct"},
         {}},
        {"part", {"p_partkey", "p_brand", "p_container", "p_size"}, {}}});
  read("tpch-q22", 1.0,
       {{"customer", {"c_custkey", "c_phone", "c_acctbal"}, {}},
        {"orders", {"o_custkey"}, {}}});

  return queries;
}

QueryJournal TpchJournal(uint64_t total_queries) {
  const std::vector<Query> templates = TpchQueries();
  QueryJournal journal;
  const uint64_t per_template = total_queries / templates.size();
  const uint64_t remainder = total_queries % templates.size();
  for (size_t i = 0; i < templates.size(); ++i) {
    journal.Record(templates[i], per_template + (i < remainder ? 1 : 0));
  }
  return journal;
}

}  // namespace qcap::workloads
