// TPC-H-style workload model (Section 4.1).
//
// Reproduces the inputs the paper's read-only experiments need: the 8-table
// schema with per-column physical sizes (SF 1 = ~1 GB), and the 19 query
// templates the paper used (TPC-H minus Q17/Q20/Q21, which its PostgreSQL
// backends could not process in reasonable time). Each template carries the
// tables/columns it references and a per-execution cost profile consistent
// with single-node PostgreSQL at SF 1.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/catalog.h"
#include "workload/journal.h"

namespace qcap::workloads {

/// The TPC-H schema; call SetScaleFactor() on the result for other SFs.
engine::Catalog TpchCatalog(double scale_factor = 1.0);

/// The 19 query templates (Q17/Q20/Q21 omitted as in the paper), with
/// structured column references and per-execution costs in seconds.
std::vector<Query> TpchQueries();

/// A journal of \p total_queries drawn uniformly over the templates,
/// mirroring the official query generator's round-robin streams.
QueryJournal TpchJournal(uint64_t total_queries = 10000);

}  // namespace qcap::workloads
