#include "engine/schema_io.h"

#include <fstream>
#include <sstream>

namespace qcap::engine {

namespace {

Result<ColumnType> ParseType(const std::string& name) {
  if (name == "int32") return ColumnType::kInt32;
  if (name == "int64") return ColumnType::kInt64;
  if (name == "decimal") return ColumnType::kDecimal;
  if (name == "date") return ColumnType::kDate;
  if (name == "char") return ColumnType::kChar;
  if (name == "varchar") return ColumnType::kVarchar;
  return Status::InvalidArgument("unknown column type '" + name + "'");
}

const char* TypeToken(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32: return "int32";
    case ColumnType::kInt64: return "int64";
    case ColumnType::kDecimal: return "decimal";
    case ColumnType::kDate: return "date";
    case ColumnType::kChar: return "char";
    case ColumnType::kVarchar: return "varchar";
  }
  return "int64";
}

bool NeedsWidth(ColumnType type) {
  return type == ColumnType::kChar || type == ColumnType::kVarchar;
}

}  // namespace

std::string SerializeCatalog(const Catalog& catalog) {
  std::string out = "# qcap schema\n";
  out += "scale " + std::to_string(catalog.scale_factor()) + "\n";
  for (const auto& table : catalog.tables()) {
    out += "table " + table.name + " " + std::to_string(table.base_rows) + "\n";
    for (const auto& col : table.columns) {
      out += "col " + col.name + " " + TypeToken(col.type);
      if (NeedsWidth(col.type)) {
        out += " " + std::to_string(col.declared_width);
      }
      if (col.primary_key) out += " pk";
      out += "\n";
    }
  }
  return out;
}

Result<Catalog> DeserializeCatalog(const std::string& text) {
  Catalog catalog;
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  TableDef pending;
  bool have_pending = false;
  double scale = 1.0;

  auto flush = [&]() -> Status {
    if (have_pending) {
      QCAP_RETURN_NOT_OK(catalog.AddTable(std::move(pending)));
      pending = TableDef{};
      have_pending = false;
    }
    return Status::OK();
  };

  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword) || keyword[0] == '#') continue;
    const std::string where = " (line " + std::to_string(line_number) + ")";
    if (keyword == "scale") {
      if (!(tokens >> scale) || scale <= 0.0) {
        return Status::InvalidArgument("bad scale factor" + where);
      }
    } else if (keyword == "table") {
      QCAP_RETURN_NOT_OK(flush());
      uint64_t rows = 0;
      if (!(tokens >> pending.name >> rows)) {
        return Status::InvalidArgument("bad table line" + where);
      }
      pending.base_rows = rows;
      have_pending = true;
    } else if (keyword == "col") {
      if (!have_pending) {
        return Status::InvalidArgument("col before any table" + where);
      }
      ColumnDef col;
      std::string type_name;
      if (!(tokens >> col.name >> type_name)) {
        return Status::InvalidArgument("bad col line" + where);
      }
      QCAP_ASSIGN_OR_RETURN(col.type, ParseType(type_name));
      std::string extra;
      if (NeedsWidth(col.type)) {
        if (!(tokens >> col.declared_width) || col.declared_width == 0) {
          return Status::InvalidArgument("char/varchar needs a width" + where);
        }
      }
      while (tokens >> extra) {
        if (extra == "pk") {
          col.primary_key = true;
        } else {
          return Status::InvalidArgument("unexpected token '" + extra + "'" +
                                         where);
        }
      }
      pending.columns.push_back(std::move(col));
    } else {
      return Status::InvalidArgument("unknown keyword '" + keyword + "'" +
                                     where);
    }
  }
  QCAP_RETURN_NOT_OK(flush());
  if (catalog.NumTables() == 0) {
    return Status::InvalidArgument("schema defines no tables");
  }
  catalog.SetScaleFactor(scale);
  return catalog;
}

Status SaveCatalog(const Catalog& catalog, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const std::string data = SerializeCatalog(catalog);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<Catalog> LoadCatalog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeCatalog(buffer.str());
}

}  // namespace qcap::engine
