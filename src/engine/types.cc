#include "engine/types.h"

namespace qcap::engine {

uint32_t TypeWidth(ColumnType type, uint32_t declared_width) {
  switch (type) {
    case ColumnType::kInt32: return 4;
    case ColumnType::kInt64: return 8;
    case ColumnType::kDecimal: return 8;
    case ColumnType::kDate: return 4;
    case ColumnType::kChar: return declared_width;
    case ColumnType::kVarchar: return declared_width;
  }
  return 8;
}

std::string TypeName(ColumnType type, uint32_t declared_width) {
  switch (type) {
    case ColumnType::kInt32: return "int32";
    case ColumnType::kInt64: return "int64";
    case ColumnType::kDecimal: return "decimal";
    case ColumnType::kDate: return "date";
    case ColumnType::kChar: return "char(" + std::to_string(declared_width) + ")";
    case ColumnType::kVarchar:
      return "varchar(" + std::to_string(declared_width) + ")";
  }
  return "unknown";
}

}  // namespace qcap::engine
