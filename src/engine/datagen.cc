#include "engine/datagen.h"

#include <algorithm>
#include <cmath>

namespace qcap::engine {

namespace {

std::string RandomString(Rng* rng, uint32_t width) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::string out;
  out.reserve(width);
  for (uint32_t i = 0; i < width; ++i) {
    out.push_back(kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

Value RandomValue(const ColumnDef& def, uint64_t row, Rng* rng) {
  switch (def.type) {
    case ColumnType::kInt32:
    case ColumnType::kInt64:
      // Primary keys are dense and unique; other integers are skewed FKs.
      if (def.primary_key) return static_cast<int64_t>(row);
      return static_cast<int64_t>(rng->NextBounded(1 + row + 1000));
    case ColumnType::kDate:
      // Days in [1992-01-01, 1998-12-31]-ish, as day numbers.
      return static_cast<int64_t>(8035 + rng->NextBounded(2557));
    case ColumnType::kDecimal:
      return rng->NextDouble(0.0, 100000.0);
    case ColumnType::kChar:
      return RandomString(rng, def.declared_width);
    case ColumnType::kVarchar: {
      // Average out at the declared (average) width.
      const uint32_t w = def.declared_width;
      const uint32_t lo = w / 2;
      const uint32_t len = lo + static_cast<uint32_t>(rng->NextBounded(w + 1));
      return RandomString(rng, std::min(len, 2 * w));
    }
  }
  return int64_t{0};
}

}  // namespace

Result<Table> GenerateTable(const Catalog& catalog, const std::string& name,
                            const DataGenOptions& options) {
  QCAP_ASSIGN_OR_RETURN(const TableDef* def, catalog.FindTable(name));
  QCAP_ASSIGN_OR_RETURN(double scaled_rows, catalog.TableRows(name));
  const auto rows = static_cast<uint64_t>(
      std::max<double>(static_cast<double>(options.min_rows),
                       scaled_rows * options.row_fraction));
  Rng rng(options.seed ^ std::hash<std::string>{}(name));
  Table table(*def);
  std::vector<Value> row_values(def->columns.size());
  for (uint64_t row = 0; row < rows; ++row) {
    for (size_t c = 0; c < def->columns.size(); ++c) {
      row_values[c] = RandomValue(def->columns[c], row, &rng);
    }
    QCAP_RETURN_NOT_OK(table.AppendRow(row_values));
  }
  return table;
}

Result<std::map<std::string, Table>> GenerateDatabase(
    const Catalog& catalog, const DataGenOptions& options) {
  std::map<std::string, Table> database;
  for (const auto& def : catalog.tables()) {
    QCAP_ASSIGN_OR_RETURN(Table table,
                          GenerateTable(catalog, def.name, options));
    database.emplace(def.name, std::move(table));
  }
  return database;
}

}  // namespace qcap::engine
