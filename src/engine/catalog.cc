#include "engine/catalog.h"

namespace qcap::engine {

uint64_t TableDef::RowWidth() const {
  uint64_t w = 0;
  for (const auto& c : columns) w += c.width();
  return w;
}

int TableDef::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> TableDef::PrimaryKeyColumns() const {
  std::vector<std::string> keys;
  for (const auto& c : columns) {
    if (c.primary_key) keys.push_back(c.name);
  }
  return keys;
}

Status Catalog::AddTable(TableDef table) {
  if (table.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (table.columns.empty()) {
    return Status::InvalidArgument("table '" + table.name + "' has no columns");
  }
  if (index_.count(table.name) != 0) {
    return Status::AlreadyExists("table '" + table.name + "' already registered");
  }
  index_[table.name] = tables_.size();
  tables_.push_back(std::move(table));
  return Status::OK();
}

void Catalog::SetScaleFactor(double sf) { scale_factor_ = sf; }

Result<const TableDef*> Catalog::FindTable(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &tables_[it->second];
}

bool Catalog::HasTable(const std::string& name) const {
  return index_.count(name) != 0;
}

Result<double> Catalog::TableRows(const std::string& table) const {
  QCAP_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  return static_cast<double>(def->base_rows) * scale_factor_;
}

Result<double> Catalog::TableBytes(const std::string& table) const {
  QCAP_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  return static_cast<double>(def->base_rows) * scale_factor_ *
         static_cast<double>(def->RowWidth());
}

Result<double> Catalog::ColumnBytes(const std::string& table,
                                    const std::string& column) const {
  QCAP_ASSIGN_OR_RETURN(const TableDef* def, FindTable(table));
  int idx = def->ColumnIndex(column);
  if (idx < 0) {
    return Status::NotFound("no column '" + column + "' in table '" + table + "'");
  }
  return static_cast<double>(def->base_rows) * scale_factor_ *
         static_cast<double>(def->columns[static_cast<size_t>(idx)].width());
}

double Catalog::TotalBytes() const {
  double total = 0.0;
  for (const auto& t : tables_) {
    total += static_cast<double>(t.base_rows) * scale_factor_ *
             static_cast<double>(t.RowWidth());
  }
  return total;
}

}  // namespace qcap::engine
