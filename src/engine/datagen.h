// Deterministic synthetic data generation for the column-store tables,
// playing the role of dbgen/the benchmark loaders at reduced scale.
#pragma once

#include <map>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "engine/table.h"

namespace qcap::engine {

/// Options for data generation.
struct DataGenOptions {
  /// Multiplier on the catalog's (scaled) row counts; generate small
  /// samples of big schemas with e.g. 0.001.
  double row_fraction = 1.0;
  /// Generate at least this many rows per table (so tiny fractions still
  /// produce measurable data).
  uint64_t min_rows = 16;
  uint64_t seed = 1;
};

/// Generates one table of the catalog.
Result<Table> GenerateTable(const Catalog& catalog, const std::string& name,
                            const DataGenOptions& options = {});

/// Generates every table of the catalog.
Result<std::map<std::string, Table>> GenerateDatabase(
    const Catalog& catalog, const DataGenOptions& options = {});

}  // namespace qcap::engine
