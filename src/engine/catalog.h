// Schema catalog: table and column definitions with physical sizes.
//
// The catalog is the single source of truth for fragment sizes. Row counts
// scale linearly with a scale factor, mirroring TPC-style data generators.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/types.h"

namespace qcap::engine {

/// Definition of one column of a table.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  uint32_t declared_width = 0;  ///< For kChar/kVarchar: (average) width.
  bool primary_key = false;     ///< Part of the table's candidate key.

  /// Storage width in bytes of one value.
  uint32_t width() const { return TypeWidth(type, declared_width); }
};

/// Definition of one table.
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  /// Row count at scale factor 1. Actual rows = base_rows * scale_factor.
  uint64_t base_rows = 0;

  /// Width in bytes of one full row.
  uint64_t RowWidth() const;
  /// Index of column \p column_name, or -1 if absent.
  int ColumnIndex(const std::string& column_name) const;
  /// Names of the primary-key columns.
  std::vector<std::string> PrimaryKeyColumns() const;
};

/// \brief A database schema with physical size accounting.
class Catalog {
 public:
  Catalog() = default;

  /// Registers \p table. Fails if a table of the same name exists or the
  /// definition is empty.
  Status AddTable(TableDef table);

  /// Sets the data scale factor (default 1.0). Row counts and all sizes
  /// scale linearly.
  void SetScaleFactor(double sf);
  double scale_factor() const { return scale_factor_; }

  /// Number of tables.
  size_t NumTables() const { return tables_.size(); }
  /// All table definitions in registration order.
  const std::vector<TableDef>& tables() const { return tables_; }

  /// Looks up a table by name.
  Result<const TableDef*> FindTable(const std::string& name) const;
  /// True iff \p name is a registered table.
  bool HasTable(const std::string& name) const;

  /// Rows of \p table at the current scale factor.
  Result<double> TableRows(const std::string& table) const;
  /// Bytes of the full \p table at the current scale factor.
  Result<double> TableBytes(const std::string& table) const;
  /// Bytes of one column of \p table at the current scale factor.
  Result<double> ColumnBytes(const std::string& table,
                             const std::string& column) const;

  /// Total bytes of all tables.
  double TotalBytes() const;

 private:
  std::vector<TableDef> tables_;
  std::map<std::string, size_t> index_;
  double scale_factor_ = 1.0;
};

}  // namespace qcap::engine
