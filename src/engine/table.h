// In-memory column-store tables: the physical substrate behind the
// catalog's size accounting. Generated data is scanned by the calibrator
// (exec/executor.h) to ground the simulator's cost model in measured
// behaviour rather than assumed constants.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"

namespace qcap::engine {

/// One cell value.
using Value = std::variant<int64_t, double, std::string>;

/// \brief Typed columnar storage for one column.
class Column {
 public:
  explicit Column(ColumnDef def);

  const ColumnDef& def() const { return def_; }
  size_t size() const;

  /// Appends a value; its alternative must match the column type
  /// (int64 for integer/date columns, double for decimals, string for
  /// char/varchar).
  Status Append(const Value& value);

  /// Reads row \p i back as a Value.
  Value Get(size_t i) const;

  /// Raw typed access for scans (empty when the type does not match).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Bytes of payload stored (fixed widths for numerics, actual lengths
  /// for strings).
  uint64_t PayloadBytes() const;

 private:
  ColumnDef def_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

/// \brief A relation: a set of equally long columns.
class Table {
 public:
  explicit Table(TableDef def);

  const TableDef& def() const { return def_; }
  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }

  /// Appends one row; the value count must equal the column count.
  Status AppendRow(const std::vector<Value>& row);

  /// Column by index / name.
  const Column& column(size_t i) const { return columns_[i]; }
  Result<const Column*> FindColumn(const std::string& name) const;

  /// Total payload bytes across all columns.
  uint64_t PayloadBytes() const;

 private:
  TableDef def_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace qcap::engine
