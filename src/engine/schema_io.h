// Schema catalog persistence: a simple line-based text format so schemas
// can be authored by hand and loaded by tools.
//
// Format (one entity per line, '#' comments allowed):
//   table <name> <base_rows> [scale_factor applies catalog-wide]
//   col   <name> <type> [width] [pk]
// where <type> is one of int32,int64,decimal,date,char,varchar (char and
// varchar require a width). Columns belong to the most recent table line.
// A catalog-wide "scale <factor>" line may appear anywhere.
#pragma once

#include <string>

#include "common/status.h"
#include "engine/catalog.h"

namespace qcap::engine {

/// Serializes \p catalog to the text format.
std::string SerializeCatalog(const Catalog& catalog);

/// Parses a catalog from the text format.
Result<Catalog> DeserializeCatalog(const std::string& text);

/// Writes \p catalog to \p path.
Status SaveCatalog(const Catalog& catalog, const std::string& path);

/// Reads a catalog from \p path.
Result<Catalog> LoadCatalog(const std::string& path);

}  // namespace qcap::engine
