#include "engine/table.h"

namespace qcap::engine {

namespace {

enum class Storage { kInt, kDouble, kString };

Storage StorageOf(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
    case ColumnType::kInt64:
    case ColumnType::kDate:
      return Storage::kInt;
    case ColumnType::kDecimal:
      return Storage::kDouble;
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      return Storage::kString;
  }
  return Storage::kInt;
}

}  // namespace

Column::Column(ColumnDef def) : def_(std::move(def)) {}

size_t Column::size() const {
  switch (StorageOf(def_.type)) {
    case Storage::kInt: return ints_.size();
    case Storage::kDouble: return doubles_.size();
    case Storage::kString: return strings_.size();
  }
  return 0;
}

Status Column::Append(const Value& value) {
  switch (StorageOf(def_.type)) {
    case Storage::kInt:
      if (!std::holds_alternative<int64_t>(value)) {
        return Status::InvalidArgument("column '" + def_.name +
                                       "' expects an integer value");
      }
      ints_.push_back(std::get<int64_t>(value));
      return Status::OK();
    case Storage::kDouble:
      if (!std::holds_alternative<double>(value)) {
        return Status::InvalidArgument("column '" + def_.name +
                                       "' expects a decimal value");
      }
      doubles_.push_back(std::get<double>(value));
      return Status::OK();
    case Storage::kString:
      if (!std::holds_alternative<std::string>(value)) {
        return Status::InvalidArgument("column '" + def_.name +
                                       "' expects a string value");
      }
      strings_.push_back(std::get<std::string>(value));
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Value Column::Get(size_t i) const {
  switch (StorageOf(def_.type)) {
    case Storage::kInt: return ints_[i];
    case Storage::kDouble: return doubles_[i];
    case Storage::kString: return strings_[i];
  }
  return int64_t{0};
}

uint64_t Column::PayloadBytes() const {
  switch (StorageOf(def_.type)) {
    case Storage::kInt:
      return ints_.size() * def_.width();
    case Storage::kDouble:
      return doubles_.size() * 8;
    case Storage::kString: {
      uint64_t total = 0;
      for (const auto& s : strings_) total += s.size();
      return total;
    }
  }
  return 0;
}

Table::Table(TableDef def) : def_(std::move(def)) {
  columns_.reserve(def_.columns.size());
  for (const auto& col : def_.columns) columns_.emplace_back(col);
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table '" +
        def_.name + "' has " + std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    QCAP_RETURN_NOT_OK(columns_[i].Append(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Result<const Column*> Table::FindColumn(const std::string& name) const {
  const int idx = def_.ColumnIndex(name);
  if (idx < 0) {
    return Status::NotFound("no column '" + name + "' in table '" +
                            def_.name + "'");
  }
  return &columns_[static_cast<size_t>(idx)];
}

uint64_t Table::PayloadBytes() const {
  uint64_t total = 0;
  for (const auto& col : columns_) total += col.PayloadBytes();
  return total;
}

}  // namespace qcap::engine
