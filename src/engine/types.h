// Column type metadata for the mini storage engine.
//
// The engine does not execute SQL; it models the physical properties the
// allocation algorithms and the cluster simulator need: per-column byte
// widths, per-table row counts, and derived fragment sizes at table,
// column, and horizontal granularity.
#pragma once

#include <cstdint>
#include <string>

namespace qcap::engine {

/// Physical column types with fixed or estimated average widths.
enum class ColumnType {
  kInt32,
  kInt64,
  kDecimal,    ///< Fixed-point decimal, stored as 8 bytes.
  kDate,       ///< Days since epoch, 4 bytes.
  kChar,       ///< Fixed-width string; width given per column.
  kVarchar     ///< Variable-width string; width is the average width.
};

/// Returns the storage width in bytes for \p type; for kChar/kVarchar the
/// declared/average width \p declared_width is used.
uint32_t TypeWidth(ColumnType type, uint32_t declared_width);

/// Human-readable type name, e.g. "int64" or "varchar(55)".
std::string TypeName(ColumnType type, uint32_t declared_width);

}  // namespace qcap::engine
